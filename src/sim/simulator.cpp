#include "sim/simulator.h"

#include <sstream>
#include <stdexcept>

namespace aesifc::sim {

Simulator::Simulator(const Module& m)
    : module_{m}, schedule_{hdl::scheduleCombinational(m)} {
  m.validate();
  values_.resize(m.signals().size());
  reset();
}

void Simulator::reset() {
  for (std::size_t i = 0; i < module_.signals().size(); ++i) {
    const auto& s = module_.signals()[i];
    values_[i] = (s.kind == hdl::SignalKind::Reg) ? s.reset
                                                  : aesifc::BitVec(s.width);
  }
  cycle_ = 0;
  evalComb();
}

void Simulator::poke(SignalId s, aesifc::BitVec v) {
  const auto& sig = module_.signal(s);
  if (sig.kind != hdl::SignalKind::Input)
    throw std::logic_error("poke: '" + sig.name + "' is not an input");
  if (v.width() != sig.width)
    throw std::logic_error("poke: width mismatch on '" + sig.name + "'");
  values_[s.v] = std::move(v);
}

void Simulator::poke(const std::string& name, aesifc::BitVec v) {
  const SignalId s = module_.findSignal(name);
  if (!s.valid()) throw std::logic_error("poke: no signal '" + name + "'");
  poke(s, std::move(v));
}

const aesifc::BitVec& Simulator::peek(SignalId s) const { return values_[s.v]; }

const aesifc::BitVec& Simulator::peek(const std::string& name) const {
  const SignalId s = module_.findSignal(name);
  if (!s.valid()) throw std::logic_error("peek: no signal '" + name + "'");
  return peek(s);
}

void Simulator::evalComb() {
  auto look = [&](SignalId s) -> const aesifc::BitVec& { return values_[s.v]; };
  for (const auto& entry : schedule_.order) {
    if (entry.is_downgrade) {
      const auto& d = module_.downgrades()[entry.index];
      values_[d.lhs.v] = hdl::evalExpr(module_, d.value, look);
    } else {
      const auto& a = module_.assigns()[entry.index];
      values_[a.lhs.v] = hdl::evalExpr(module_, a.rhs, look);
    }
  }
}

void Simulator::step(unsigned n) {
  auto look = [&](SignalId s) -> const aesifc::BitVec& { return values_[s.v]; };
  for (unsigned k = 0; k < n; ++k) {
    evalComb();
    // Compute all next values against pre-edge state, then commit.
    std::vector<std::pair<std::uint32_t, aesifc::BitVec>> updates;
    updates.reserve(module_.regWrites().size());
    for (const auto& rw : module_.regWrites()) {
      if (!hdl::evalExpr(module_, rw.enable, look).isZero()) {
        updates.emplace_back(rw.reg.v, hdl::evalExpr(module_, rw.next, look));
      }
    }
    for (auto& [idx, v] : updates) values_[idx] = std::move(v);
    ++cycle_;
    evalComb();
  }
}

Trace::Trace(const Simulator& sim, std::vector<SignalId> watch)
    : sim_{sim}, watch_{std::move(watch)} {}

void Trace::sample() {
  std::vector<aesifc::BitVec> row;
  row.reserve(watch_.size());
  for (auto s : watch_) row.push_back(sim_.peek(s));
  rows_.push_back(std::move(row));
}

std::string Trace::toCsv(const Module& m) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < watch_.size(); ++i) {
    os << (i ? "," : "") << m.signal(watch_[i]).name;
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << (i ? "," : "") << row[i].toHex();
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace aesifc::sim
