#pragma once
// Arbitrary-width bit vector used as the universal value type of the HDL IR
// and the behavioral accelerator model. Widths are fixed at construction;
// all arithmetic truncates to the declared width (hardware semantics).

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace aesifc {

class BitVec {
 public:
  BitVec() = default;

  // Zero-valued vector of `width` bits.
  explicit BitVec(unsigned width) : width_{width}, words_(wordCount(width), 0) {}

  // Vector of `width` bits holding `value` (truncated to the width).
  BitVec(unsigned width, std::uint64_t value);

  static BitVec fromBytes(const std::uint8_t* data, unsigned nbytes);
  static BitVec fromHex(unsigned width, const std::string& hex);
  static BitVec allOnes(unsigned width);

  unsigned width() const { return width_; }
  bool isZero() const;

  // Low 64 bits (masked to width if width < 64).
  std::uint64_t toU64() const;

  bool bit(unsigned i) const;
  void setBit(unsigned i, bool v);

  // Bits [lo, lo+w) as a new vector.
  BitVec slice(unsigned lo, unsigned w) const;
  // In-place store of `v` into bits [lo, lo+v.width()).
  void setSlice(unsigned lo, const BitVec& v);

  // `hi` becomes the most significant part: {hi, lo}.
  static BitVec concat(const BitVec& hi, const BitVec& lo);

  // Zero-extend or truncate to `w` bits.
  BitVec resize(unsigned w) const;

  std::uint8_t byte(unsigned i) const;  // byte i, little-endian within the vector
  void setByte(unsigned i, std::uint8_t b);
  std::vector<std::uint8_t> toBytes() const;  // ceil(width/8) bytes, little-endian

  // Bitwise / arithmetic (operands must have equal width).
  BitVec operator~() const;
  BitVec operator&(const BitVec& o) const;
  BitVec operator|(const BitVec& o) const;
  BitVec operator^(const BitVec& o) const;
  BitVec add(const BitVec& o) const;  // modulo 2^width
  BitVec sub(const BitVec& o) const;
  BitVec shl(unsigned n) const;
  BitVec shr(unsigned n) const;  // logical

  bool operator==(const BitVec& o) const;
  bool operator!=(const BitVec& o) const { return !(*this == o); }
  // Unsigned comparison; operands must have equal width.
  bool ult(const BitVec& o) const;

  unsigned popcount() const;
  std::string toHex() const;  // most-significant nibble first

  std::size_t hash() const;

 private:
  static unsigned wordCount(unsigned width) { return (width + 63) / 64; }
  void maskTop();

  unsigned width_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace aesifc
