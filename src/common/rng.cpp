#include "common/rng.h"

namespace aesifc {

static std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

static inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  if (bound == 0) return 0;
  return next() % bound;
}

bool Rng::chance(double p) {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0) < p;
}

BitVec Rng::bits(unsigned width) {
  BitVec v(width);
  for (unsigned i = 0; i < width; i += 64) {
    const unsigned w = std::min(64u, width - i);
    BitVec chunk(w, next());
    v.setSlice(i, chunk);
  }
  return v;
}

}  // namespace aesifc
