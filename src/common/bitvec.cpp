#include "common/bitvec.h"

#include <cassert>
#include <stdexcept>

namespace aesifc {

BitVec::BitVec(unsigned width, std::uint64_t value)
    : width_{width}, words_(wordCount(width), 0) {
  if (width == 0) return;
  words_[0] = value;
  maskTop();
}

BitVec BitVec::fromBytes(const std::uint8_t* data, unsigned nbytes) {
  BitVec v(nbytes * 8);
  for (unsigned i = 0; i < nbytes; ++i) v.setByte(i, data[i]);
  return v;
}

static int hexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

BitVec BitVec::fromHex(unsigned width, const std::string& hex) {
  BitVec v(width);
  unsigned nibble = 0;  // nibble index from the least-significant end
  for (auto it = hex.rbegin(); it != hex.rend(); ++it) {
    if (*it == '_' || *it == ' ') continue;
    const int d = hexVal(*it);
    if (d < 0) throw std::invalid_argument("BitVec::fromHex: bad digit");
    for (unsigned b = 0; b < 4; ++b) {
      const unsigned pos = nibble * 4 + b;
      if (pos < width && ((d >> b) & 1)) v.setBit(pos, true);
    }
    ++nibble;
  }
  return v;
}

BitVec BitVec::allOnes(unsigned width) {
  BitVec v(width);
  for (auto& w : v.words_) w = ~0ULL;
  v.maskTop();
  return v;
}

void BitVec::maskTop() {
  if (width_ == 0 || words_.empty()) return;
  const unsigned rem = width_ % 64;
  if (rem != 0) words_.back() &= (~0ULL >> (64 - rem));
}

bool BitVec::isZero() const {
  for (auto w : words_)
    if (w != 0) return false;
  return true;
}

std::uint64_t BitVec::toU64() const {
  if (words_.empty()) return 0;
  return words_[0];
}

bool BitVec::bit(unsigned i) const {
  assert(i < width_);
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void BitVec::setBit(unsigned i, bool v) {
  assert(i < width_);
  if (v)
    words_[i / 64] |= (1ULL << (i % 64));
  else
    words_[i / 64] &= ~(1ULL << (i % 64));
}

BitVec BitVec::slice(unsigned lo, unsigned w) const {
  assert(lo + w <= width_);
  BitVec out(w);
  for (unsigned i = 0; i < w; ++i) out.setBit(i, bit(lo + i));
  return out;
}

void BitVec::setSlice(unsigned lo, const BitVec& v) {
  assert(lo + v.width() <= width_);
  for (unsigned i = 0; i < v.width(); ++i) setBit(lo + i, v.bit(i));
}

BitVec BitVec::concat(const BitVec& hi, const BitVec& lo) {
  BitVec out(hi.width() + lo.width());
  out.setSlice(0, lo);
  out.setSlice(lo.width(), hi);
  return out;
}

BitVec BitVec::resize(unsigned w) const {
  BitVec out(w);
  const unsigned n = std::min(w, width_);
  for (unsigned i = 0; i < n; ++i) out.setBit(i, bit(i));
  return out;
}

std::uint8_t BitVec::byte(unsigned i) const {
  std::uint8_t b = 0;
  for (unsigned k = 0; k < 8; ++k) {
    const unsigned pos = i * 8 + k;
    if (pos < width_ && bit(pos)) b |= static_cast<std::uint8_t>(1u << k);
  }
  return b;
}

void BitVec::setByte(unsigned i, std::uint8_t b) {
  for (unsigned k = 0; k < 8; ++k) {
    const unsigned pos = i * 8 + k;
    if (pos < width_) setBit(pos, (b >> k) & 1);
  }
}

std::vector<std::uint8_t> BitVec::toBytes() const {
  std::vector<std::uint8_t> out((width_ + 7) / 8);
  for (unsigned i = 0; i < out.size(); ++i) out[i] = byte(i);
  return out;
}

BitVec BitVec::operator~() const {
  BitVec out(width_);
  for (std::size_t i = 0; i < words_.size(); ++i) out.words_[i] = ~words_[i];
  out.maskTop();
  return out;
}

BitVec BitVec::operator&(const BitVec& o) const {
  assert(width_ == o.width_);
  BitVec out(width_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    out.words_[i] = words_[i] & o.words_[i];
  return out;
}

BitVec BitVec::operator|(const BitVec& o) const {
  assert(width_ == o.width_);
  BitVec out(width_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    out.words_[i] = words_[i] | o.words_[i];
  return out;
}

BitVec BitVec::operator^(const BitVec& o) const {
  assert(width_ == o.width_);
  BitVec out(width_);
  for (std::size_t i = 0; i < words_.size(); ++i)
    out.words_[i] = words_[i] ^ o.words_[i];
  return out;
}

BitVec BitVec::add(const BitVec& o) const {
  assert(width_ == o.width_);
  BitVec out(width_);
  unsigned __int128 carry = 0;
  for (std::size_t i = 0; i < words_.size(); ++i) {
    const unsigned __int128 s =
        static_cast<unsigned __int128>(words_[i]) + o.words_[i] + carry;
    out.words_[i] = static_cast<std::uint64_t>(s);
    carry = s >> 64;
  }
  out.maskTop();
  return out;
}

BitVec BitVec::sub(const BitVec& o) const {
  // a - b = a + ~b + 1 (mod 2^width)
  return add((~o).add(BitVec(width_, 1)));
}

BitVec BitVec::shl(unsigned n) const {
  BitVec out(width_);
  for (unsigned i = n; i < width_; ++i) out.setBit(i, bit(i - n));
  return out;
}

BitVec BitVec::shr(unsigned n) const {
  BitVec out(width_);
  for (unsigned i = 0; i + n < width_; ++i) out.setBit(i, bit(i + n));
  return out;
}

bool BitVec::operator==(const BitVec& o) const {
  return width_ == o.width_ && words_ == o.words_;
}

bool BitVec::ult(const BitVec& o) const {
  assert(width_ == o.width_);
  for (std::size_t i = words_.size(); i-- > 0;) {
    if (words_[i] != o.words_[i]) return words_[i] < o.words_[i];
  }
  return false;
}

unsigned BitVec::popcount() const {
  unsigned n = 0;
  for (auto w : words_) n += static_cast<unsigned>(__builtin_popcountll(w));
  return n;
}

std::string BitVec::toHex() const {
  if (width_ == 0) return "0";
  const unsigned nibbles = (width_ + 3) / 4;
  std::string s(nibbles, '0');
  for (unsigned n = 0; n < nibbles; ++n) {
    unsigned d = 0;
    for (unsigned b = 0; b < 4; ++b) {
      const unsigned pos = n * 4 + b;
      if (pos < width_ && bit(pos)) d |= (1u << b);
    }
    s[nibbles - 1 - n] = "0123456789abcdef"[d];
  }
  return s;
}

std::size_t BitVec::hash() const {
  std::size_t h = width_ * 0x9e3779b97f4a7c15ULL;
  for (auto w : words_) h = (h ^ w) * 0x100000001b3ULL;
  return h;
}

}  // namespace aesifc
