#pragma once
// Deterministic PRNG used by workload generators, attack drivers, and
// property tests. xoshiro256** — fast, reproducible across platforms.

#include <cstdint>

#include "common/bitvec.h"

namespace aesifc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  std::uint64_t next();
  // Uniform in [0, bound).
  std::uint64_t below(std::uint64_t bound);
  bool chance(double p);  // true with probability p
  BitVec bits(unsigned width);

 private:
  std::uint64_t s_[4];
};

}  // namespace aesifc
