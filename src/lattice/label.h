#pragma once
// Two-tuple security label l = (confidentiality, integrity), exactly the
// ChiselFlow label format the paper uses (Section 2.3), plus principals.

#include <string>

#include "lattice/sec_level.h"

namespace aesifc::lattice {

struct Label {
  Conf c;
  Integ i;

  constexpr Label() : c{Conf::bottom()}, i{Integ::top()} {}
  constexpr Label(Conf conf, Integ integ) : c{conf}, i{integ} {}

  // (bottom, top): public & fully trusted — least restrictive point.
  static constexpr Label publicTrusted() {
    return Label{Conf::bottom(), Integ::top()};
  }
  // (bottom, bottom): public & untrusted.
  static constexpr Label publicUntrusted() {
    return Label{Conf::bottom(), Integ::bottom()};
  }
  // (top, top): the master-key label in the paper (Section 3.2.2).
  static constexpr Label topTop() { return Label{Conf::top(), Integ::top()}; }
  // (top, bottom): most restrictive point.
  static constexpr Label mostRestrictive() {
    return Label{Conf::top(), Integ::bottom()};
  }

  // Full information-flow order: both dimensions must permit the flow.
  constexpr bool flowsTo(const Label& o) const {
    return c.flowsTo(o.c) && i.flowsTo(o.i);
  }
  // Join/meet in the restrictiveness order.
  constexpr Label join(const Label& o) const {
    return Label{c.join(o.c), i.join(o.i)};
  }
  constexpr Label meet(const Label& o) const {
    return Label{c.meet(o.c), i.meet(o.i)};
  }
  constexpr bool operator==(const Label&) const = default;

  std::string toString() const;  // "(PUB,TRU)" etc.
};

// A principal (user / supervisor) is identified by a label describing what
// it may read (confidentiality) and how trusted its statements are
// (integrity). Downgrade checks consult the acting principal (Eq. 1).
struct Principal {
  std::string name;
  Label authority;

  // Convenience: a per-user principal with a private secrecy category `cat`
  // and a matching trust category, the typical SoC user of Fig. 2.
  static Principal user(std::string name, unsigned cat);
  // The supervisor: fully trusted, may read everything.
  static Principal supervisor();
};

}  // namespace aesifc::lattice
