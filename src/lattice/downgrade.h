#pragma once
// Nonmalleable downgrading (paper Section 2.4, Eq. 1; Cecchetti-Myers-Arden
// CCS'17). Downgrading relaxes noninterference in exactly one dimension:
//   declassification lowers confidentiality,
//   endorsement raises integrity.
//
// The paper states the constraints with the reflection operator r(.):
//
//   C(l) -p-> C(l')  allowed iff  C(l) flowsC C(l') joinC r(I(p))
//   I(l) -p-> I(l')  allowed iff  I(l) flowsI I(l') joinI r(C(p))
//
// and glosses them as: "data can only be declassified by a sufficiently
// trusted principal and data can only be endorsed when the principal can
// read it." In the powerset lattice the two rules expand to category-set
// conditions (the form we implement and test):
//
//   declassify:  C(l).cats  subset-of  C(l').cats  union  I(p).cats
//     -- the secrecy categories being released must be covered by the
//        target label plus the categories the principal's trust speaks for.
//        Reproduces the paper's worked example: (S,U) cannot go to (P,U)
//        when I(p)=U because S is not within P join r(U)=P; and the master
//        key (top,top) can only be declassified by the supervisor
//        (Section 3.2.2).
//
//   endorse:     I(l').cats  subset-of  I(l).cats  union  I(p).cats     and
//                C(l).cats   subset-of  C(p).cats
//     -- dual authority condition (a principal may confer only trust it
//        holds) plus the transparency condition from the gloss (it may only
//        endorse data it can read).

#include <string>

#include "lattice/label.h"

namespace aesifc::lattice {

enum class DowngradeKind { Declassify, Endorse };

struct DowngradeDecision {
  bool allowed = false;
  std::string reason;  // human-readable explanation for reports/logs
};

// Declassification: `from` and `to` must agree on integrity.
DowngradeDecision checkDeclassify(const Label& from, const Label& to,
                                  const Principal& p);

// Endorsement: `from` and `to` must agree on confidentiality.
DowngradeDecision checkEndorse(const Label& from, const Label& to,
                               const Principal& p);

DowngradeDecision checkDowngrade(DowngradeKind kind, const Label& from,
                                 const Label& to, const Principal& p);

}  // namespace aesifc::lattice
