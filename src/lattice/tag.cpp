#include "lattice/tag.h"

namespace aesifc::lattice {

TagCodec::TagCodec() {
  for (unsigned k = 0; k < 16; ++k) {
    confs_[k] = Conf{CatSet::level(k)};
    integs_[k] = Integ{CatSet::level(k)};
  }
  confs_[15] = Conf::top();
  integs_[15] = Integ::top();
}

TagCodec::TagCodec(std::array<Conf, 16> confs, std::array<Integ, 16> integs)
    : confs_{confs}, integs_{integs} {}

TagCodec TagCodec::userCategories() {
  std::array<Conf, 16> confs;
  std::array<Integ, 16> integs;
  confs[0] = Conf::bottom();
  integs[0] = Integ::top();
  for (unsigned k = 1; k < 15; ++k) {
    confs[k] = Conf::category(k);
    integs[k] = Integ::category(k);
  }
  confs[15] = Conf::top();
  integs[15] = Integ::bottom();
  return TagCodec{confs, integs};
}

std::optional<HwTag> TagCodec::encode(const Label& l) const {
  int ci = -1, ii = -1;
  for (unsigned k = 0; k < 16; ++k) {
    if (ci < 0 && confs_[k] == l.c) ci = static_cast<int>(k);
    if (ii < 0 && integs_[k] == l.i) ii = static_cast<int>(k);
  }
  if (ci < 0 || ii < 0) return std::nullopt;
  return static_cast<HwTag>((ii << 4) | ci);
}

Label TagCodec::decode(HwTag t) const {
  return Label{confs_[confField(t)], integs_[integField(t)]};
}

std::string TagCodec::toString(HwTag t) const {
  return decode(t).toString() + "#" + std::to_string(static_cast<int>(t));
}

}  // namespace aesifc::lattice
