#pragma once
// Runtime security tags. The paper's prototype stores 8-bit tags with data
// (4 bits confidentiality + 4 bits integrity, "compatible with a
// state-of-the-art information flow enforced processor", i.e. HyperFlow).
// A 4-bit field indexes a 16-entry palette of lattice points per dimension;
// the palette is the runtime contract between software (which names levels
// by index) and hardware (which joins/meets/compares actual lattice points).

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "lattice/label.h"

namespace aesifc::lattice {

// Hardware tag as stored in registers / tag arrays: {integ[7:4], conf[3:0]}.
using HwTag = std::uint8_t;

class TagCodec {
 public:
  // Default palette: index k encodes the chain point level(k) in both
  // dimensions, except index 15 which is the full top (all categories).
  TagCodec();

  // Palette with explicit entries (at most 16 per dimension). Entry 0 must
  // be the least restrictive point of its dimension.
  TagCodec(std::array<Conf, 16> confs, std::array<Integ, 16> integs);

  // The SoC palette used by the accelerator experiments: index 0 = public /
  // fully trusted, indexes 1..14 = per-user categories (Fig. 2's one label
  // per application), index 15 = top (the master key's level).
  static TagCodec userCategories();

  // Encode a label to a tag. Returns nullopt if either component is not in
  // the palette (hardware can only carry palette points).
  std::optional<HwTag> encode(const Label& l) const;

  Label decode(HwTag t) const;

  Conf conf(unsigned idx) const { return confs_.at(idx & 0xf); }
  Integ integ(unsigned idx) const { return integs_.at(idx & 0xf); }

  static unsigned confField(HwTag t) { return t & 0xf; }
  static unsigned integField(HwTag t) { return (t >> 4) & 0xf; }

  std::string toString(HwTag t) const;

 private:
  std::array<Conf, 16> confs_;
  std::array<Integ, 16> integs_;
};

}  // namespace aesifc::lattice
