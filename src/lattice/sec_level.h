#pragma once
// One dimension of a security label: a point in a powerset lattice over up
// to 16 categories, stored as a bitmask.
//
// The same representation serves both dimensions of the 2-tuple label, but
// the *orientation* of the information-flow order differs:
//   - Confidentiality: categories are secrecy compartments. More categories
//     = more secret = MORE restrictive. bottom (public) = {} and top
//     (fully secret) = all categories. l1 flows-to l2 iff l1 subset-of l2.
//   - Integrity: categories are trust attestations. More categories = more
//     trusted = LESS restrictive. top (fully trusted) = all categories,
//     bottom (untrusted) = {}. l1 flows-to l2 iff l1 superset-of l2.
//
// Totally ordered "classification level" policies embed as chains:
// level(k) = mask of the k low bits, so level(a) subset-of level(b) iff
// a <= b.

#include <cstdint>
#include <string>

namespace aesifc::lattice {

inline constexpr unsigned kMaxCategories = 16;

// Raw category set. Free functions below interpret it per dimension.
class CatSet {
 public:
  constexpr CatSet() = default;
  constexpr explicit CatSet(std::uint16_t mask) : mask_{mask} {}

  static constexpr CatSet none() { return CatSet{0}; }
  static constexpr CatSet all() { return CatSet{0xffff}; }
  // Singleton category i (0..15).
  static CatSet category(unsigned i);
  // Chain embedding of a totally ordered level k (0..16): low-k-bits mask.
  static CatSet level(unsigned k);

  constexpr std::uint16_t mask() const { return mask_; }
  constexpr bool subsetOf(CatSet o) const { return (mask_ & ~o.mask_) == 0; }
  constexpr CatSet unionWith(CatSet o) const {
    return CatSet{static_cast<std::uint16_t>(mask_ | o.mask_)};
  }
  constexpr CatSet intersectWith(CatSet o) const {
    return CatSet{static_cast<std::uint16_t>(mask_ & o.mask_)};
  }
  constexpr bool operator==(const CatSet&) const = default;

  std::string toString() const;  // e.g. "{0,3,7}" or "{}" or "{*}"

 private:
  std::uint16_t mask_ = 0;
};

// --- Confidentiality orientation ------------------------------------------

struct Conf {
  CatSet cats;

  constexpr Conf() = default;
  constexpr explicit Conf(CatSet c) : cats{c} {}

  static constexpr Conf bottom() { return Conf{CatSet::none()}; }  // public
  static constexpr Conf top() { return Conf{CatSet::all()}; }      // secret
  static Conf category(unsigned i) { return Conf{CatSet::category(i)}; }
  static Conf level(unsigned k) { return Conf{CatSet::level(k)}; }

  // Information-flow order: `this` may flow to `o` (o at least as secret).
  constexpr bool flowsTo(Conf o) const { return cats.subsetOf(o.cats); }
  constexpr Conf join(Conf o) const { return Conf{cats.unionWith(o.cats)}; }
  constexpr Conf meet(Conf o) const { return Conf{cats.intersectWith(o.cats)}; }
  constexpr bool operator==(const Conf&) const = default;

  std::string toString() const;
};

// --- Integrity orientation --------------------------------------------------

struct Integ {
  CatSet cats;

  constexpr Integ() = default;
  constexpr explicit Integ(CatSet c) : cats{c} {}

  static constexpr Integ top() { return Integ{CatSet::all()}; }      // trusted
  static constexpr Integ bottom() { return Integ{CatSet::none()}; }  // untrusted
  static Integ category(unsigned i) { return Integ{CatSet::category(i)}; }
  // Chain: level k trust; higher k = more trusted = less restrictive.
  static Integ level(unsigned k) { return Integ{CatSet::level(k)}; }

  // `this` may flow to `o`: a more trusted value may enter a less trusted
  // slot, never the reverse. (this superset-of o)
  constexpr bool flowsTo(Integ o) const { return o.cats.subsetOf(cats); }
  // Join in the *restrictiveness* order: result trusted only where both are.
  constexpr Integ join(Integ o) const { return Integ{cats.intersectWith(o.cats)}; }
  constexpr Integ meet(Integ o) const { return Integ{cats.unionWith(o.cats)}; }
  constexpr bool operator==(const Integ&) const = default;

  std::string toString() const;
};

// --- Reflection r(.) between dimensions (Cecchetti et al. voice/view) -------
//
// r maps a point across dimensions keeping its category set:
//   r(public) = untrusted, r(untrusted) = public (paper Section 2.4),
//   and r(top-conf) = top-integ, which is what makes the master-key
//   declassification require a fully trusted principal (Section 3.2.2).

constexpr Integ reflectToInteg(Conf c) { return Integ{c.cats}; }
constexpr Conf reflectToConf(Integ i) { return Conf{i.cats}; }

}  // namespace aesifc::lattice
