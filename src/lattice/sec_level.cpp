#include "lattice/sec_level.h"

#include <cassert>

namespace aesifc::lattice {

CatSet CatSet::category(unsigned i) {
  assert(i < kMaxCategories);
  return CatSet{static_cast<std::uint16_t>(1u << i)};
}

CatSet CatSet::level(unsigned k) {
  assert(k <= kMaxCategories);
  if (k == 0) return none();
  if (k >= 16) return all();
  return CatSet{static_cast<std::uint16_t>((1u << k) - 1)};
}

std::string CatSet::toString() const {
  if (mask_ == 0) return "{}";
  if (mask_ == 0xffff) return "{*}";
  std::string s = "{";
  bool first = true;
  for (unsigned i = 0; i < kMaxCategories; ++i) {
    if (mask_ & (1u << i)) {
      if (!first) s += ",";
      s += std::to_string(i);
      first = false;
    }
  }
  return s + "}";
}

std::string Conf::toString() const {
  if (cats == CatSet::none()) return "PUB";
  if (cats == CatSet::all()) return "SEC";
  return "C" + cats.toString();
}

std::string Integ::toString() const {
  if (cats == CatSet::all()) return "TRU";
  if (cats == CatSet::none()) return "UNT";
  return "I" + cats.toString();
}

}  // namespace aesifc::lattice
