#include "lattice/downgrade.h"

namespace aesifc::lattice {

DowngradeDecision checkDeclassify(const Label& from, const Label& to,
                                  const Principal& p) {
  if (!(from.i == to.i)) {
    return {false, "declassification must not change the integrity component"};
  }
  // C(l) flowsC C(l') joinC r(I(p)): the released categories must be covered
  // by the target plus the reflection of the principal's integrity.
  const Conf bound = to.c.join(reflectToConf(p.authority.i));
  if (from.c.flowsTo(bound)) {
    return {true, "C(" + from.c.toString() + ") flows to C(" + to.c.toString() +
                      ") join r(I(" + p.name + "))"};
  }
  return {false, "principal '" + p.name + "' with integrity " +
                     p.authority.i.toString() +
                     " is not trusted enough to declassify " +
                     from.c.toString() + " to " + to.c.toString()};
}

DowngradeDecision checkEndorse(const Label& from, const Label& to,
                               const Principal& p) {
  if (!(from.c == to.c)) {
    return {false, "endorsement must not change the confidentiality component"};
  }
  // Authority: the trust categories being added must be held by the
  // principal: I(to) subset-of I(from) union I(p).
  const CatSet claimable = from.i.cats.unionWith(p.authority.i.cats);
  if (!to.i.cats.subsetOf(claimable)) {
    return {false, "principal '" + p.name + "' with integrity " +
                       p.authority.i.toString() + " cannot confer trust " +
                       to.i.toString() + " on data of integrity " +
                       from.i.toString()};
  }
  // Transparency (nonmalleability): the principal must be able to read the
  // data it endorses: C(from) flowsC C(p).
  if (!from.c.flowsTo(p.authority.c)) {
    return {false, "principal '" + p.name + "' with confidentiality " +
                       p.authority.c.toString() +
                       " cannot read the data it endorses (" +
                       from.c.toString() + ")"};
  }
  return {true, "I(" + from.i.toString() + ") endorsed to I(" +
                    to.i.toString() + ") by readable, authorized principal"};
}

DowngradeDecision checkDowngrade(DowngradeKind kind, const Label& from,
                                 const Label& to, const Principal& p) {
  return kind == DowngradeKind::Declassify ? checkDeclassify(from, to, p)
                                           : checkEndorse(from, to, p);
}

}  // namespace aesifc::lattice
