#include "lattice/label.h"

namespace aesifc::lattice {

std::string Label::toString() const {
  return "(" + c.toString() + "," + i.toString() + ")";
}

Principal Principal::user(std::string name, unsigned cat) {
  return Principal{std::move(name),
                   Label{Conf::category(cat), Integ::category(cat)}};
}

Principal Principal::supervisor() {
  return Principal{"supervisor", Label{Conf::top(), Integ::top()}};
}

}  // namespace aesifc::lattice
