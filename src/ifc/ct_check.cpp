#include "ifc/ct_check.h"

#include <sstream>

#include "common/rng.h"
#include "sim/simulator.h"

namespace aesifc::ifc {

std::string CtCheckResult::toString() const {
  if (constant) return "constant-time: no divergence observed";
  std::ostringstream os;
  os << "NOT constant-time: trial " << diverging_trial << ", cycle "
     << first_divergence_cycle << ", signal " << diverging_signal;
  return os.str();
}

CtCheckResult checkConstantTime(const hdl::Module& m,
                                const std::vector<hdl::SignalId>& secrets,
                                const std::vector<hdl::SignalId>& publics,
                                const std::vector<hdl::SignalId>& observed,
                                const CtCheckConfig& cfg) {
  CtCheckResult result;
  Rng rng{cfg.seed};

  for (unsigned trial = 0; trial < cfg.trials && result.constant; ++trial) {
    sim::Simulator a{m}, b{m};
    // Independent secret streams, one shared public stream per trial.
    Rng secret_a{rng.next()};
    Rng secret_b{rng.next()};
    Rng pub{rng.next()};

    for (unsigned cycle = 0; cycle < cfg.cycles; ++cycle) {
      for (const auto s : publics) {
        const auto v = cfg.drive_public ? cfg.drive_public(s, cycle)
                                        : pub.bits(m.signal(s).width);
        a.poke(s, v);
        b.poke(s, v);
      }
      if (!cfg.hold_secrets || cycle == 0) {
        for (const auto s : secrets) {
          a.poke(s, secret_a.bits(m.signal(s).width));
          b.poke(s, secret_b.bits(m.signal(s).width));
        }
      }
      a.evalComb();
      b.evalComb();
      for (const auto o : observed) {
        if (!(a.peek(o) == b.peek(o))) {
          result.constant = false;
          result.first_divergence_cycle = cycle;
          result.diverging_signal = m.signal(o).name;
          result.diverging_trial = trial;
          break;
        }
      }
      if (!result.constant) break;
      a.step();
      b.step();
    }
  }
  return result;
}

}  // namespace aesifc::ifc
