#pragma once
// Exhaustive noninterference check for small combinational modules — the
// semantic ground truth the type system approximates. For an observer at
// level L, enumerate every input valuation, bucket valuations by the
// values of the L-visible inputs, and verify all L-visible outputs are
// constant within each bucket. A violation is a concrete interference
// witness: two input assignments that agree on everything the observer may
// see but produce different observable outputs.
//
// Scope: combinational, downgrade-free modules with a bounded total input
// width (downgrades intentionally break noninterference, and registers
// would require unwinding). Used by tests to prove the static checker
// sound against the actual semantics, not merely against the dynamic
// tracker's label algebra.

#include <optional>
#include <string>
#include <vector>

#include "hdl/ir.h"

namespace aesifc::ifc {

struct NiWitness {
  // Two full input assignments that the observer cannot distinguish on
  // inputs but can on `output`.
  std::vector<std::pair<std::string, aesifc::BitVec>> inputs_a;
  std::vector<std::pair<std::string, aesifc::BitVec>> inputs_b;
  std::string output;

  std::string toString() const;
};

struct NiResult {
  enum class Status {
    Noninterferent,   // exhaustively verified for this observer
    Interference,     // witness found
    Unsupported,      // registers / downgrades / too many input bits
  };
  Status status = Status::Noninterferent;
  std::optional<NiWitness> witness;
  std::string note;  // reason when Unsupported
};

// Checks noninterference at observer level `observer`: inputs whose
// (valuation-resolved) label flows to `observer` are visible; outputs whose
// resolved label flows to `observer` must not depend on the rest.
NiResult checkNoninterference(const hdl::Module& m,
                              const lattice::Label& observer,
                              unsigned max_input_bits = 18);

// Convenience: run the check at every distinct label that appears as a
// static annotation in the module; returns the first interference found.
NiResult checkNoninterferenceAllObservers(const hdl::Module& m,
                                          unsigned max_input_bits = 18);

}  // namespace aesifc::ifc
