#include "ifc/tracker.h"

#include <map>
#include <sstream>
#include <stdexcept>

namespace aesifc::ifc {

using hdl::ExprId;
using hdl::Op;
using hdl::SignalId;
using hdl::SignalKind;
using lattice::Label;

std::string RuntimeEvent::toString() const {
  std::ostringstream os;
  os << "cycle " << cycle << " "
     << (kind == Kind::OutputLeak ? "[output-leak]" : "[downgrade-rejected]")
     << " " << signal << " observed=" << observed.toString()
     << " allowed=" << allowed.toString();
  if (!message.empty()) os << " : " << message;
  return os.str();
}

DynamicTracker::DynamicTracker(const hdl::Module& m, TrackPrecision prec)
    : module_{m}, precision_{prec}, schedule_{hdl::scheduleCombinational(m)} {
  m.validate();
  values_.resize(m.signals().size());
  labels_.resize(m.signals().size(), Label::publicTrusted());
  reset();
}

void DynamicTracker::reset() {
  for (std::size_t i = 0; i < module_.signals().size(); ++i) {
    const auto& s = module_.signals()[i];
    values_[i] = (s.kind == SignalKind::Reg) ? s.reset : aesifc::BitVec(s.width);
    labels_[i] = Label::publicTrusted();
  }
  events_.clear();
  cycle_ = 0;
  evalComb();
}

hdl::SignalId DynamicTracker::mustFind(const std::string& name) const {
  const SignalId s = module_.findSignal(name);
  if (!s.valid())
    throw std::logic_error("DynamicTracker: no signal '" + name + "'");
  return s;
}

void DynamicTracker::poke(const std::string& name, aesifc::BitVec v, Label l) {
  poke(mustFind(name), std::move(v), l);
}

void DynamicTracker::poke(SignalId s, aesifc::BitVec v, Label l) {
  const auto& sig = module_.signal(s);
  if (sig.kind != SignalKind::Input)
    throw std::logic_error("poke: '" + sig.name + "' is not an input");
  values_[s.v] = std::move(v);
  labels_[s.v] = l;
}

const aesifc::BitVec& DynamicTracker::value(const std::string& name) const {
  return values_[mustFind(name).v];
}

Label DynamicTracker::label(const std::string& name) const {
  return labels_[mustFind(name).v];
}

DynamicTracker::Propagated DynamicTracker::evalWithLabel(ExprId id) {
  const auto& e = module_.expr(id);
  switch (e.op) {
    case Op::Const:
      return {e.cval, Label::publicTrusted()};
    case Op::SignalRef:
      return {values_[e.sig.v], labels_[e.sig.v]};
    case Op::Mux: {
      auto cond = evalWithLabel(e.args[0]);
      if (precision_ == TrackPrecision::Precise) {
        auto taken = evalWithLabel(cond.value.isZero() ? e.args[2] : e.args[1]);
        return {taken.value, cond.label.join(taken.label)};
      }
      auto t = evalWithLabel(e.args[1]);
      auto f = evalWithLabel(e.args[2]);
      return {cond.value.isZero() ? f.value : t.value,
              cond.label.join(t.label).join(f.label)};
    }
    case Op::And:
    case Op::Or: {
      // Precise (RTLIFT-style) tracking also exploits absorbing operands: a
      // zero And-operand (or all-ones Or-operand) alone determines the
      // result, so the other side's label is not carried. This matches the
      // static checker's short-circuit pruning.
      auto a = evalWithLabel(e.args[0]);
      auto b = evalWithLabel(e.args[1]);
      const aesifc::BitVec value =
          e.op == Op::And ? (a.value & b.value) : (a.value | b.value);
      if (precision_ == TrackPrecision::Precise) {
        const auto absorbing = [&](const aesifc::BitVec& v) {
          return e.op == Op::And ? v.isZero()
                                 : v == aesifc::BitVec::allOnes(e.width);
        };
        if (absorbing(a.value)) return {value, a.label};
        if (absorbing(b.value)) return {value, b.label};
      }
      return {value, a.label.join(b.label)};
    }
    default: {
      std::vector<Propagated> args;
      args.reserve(e.args.size());
      Label l = Label::publicTrusted();
      for (auto a : e.args) {
        args.push_back(evalWithLabel(a));
        l = l.join(args.back().label);
      }
      auto look = [&](SignalId s) -> const aesifc::BitVec& {
        return values_[s.v];
      };
      // Value computed by the shared evaluator; labels already joined.
      return {hdl::evalExpr(module_, id, look), l};
    }
  }
}

void DynamicTracker::evalComb() {
  for (const auto& entry : schedule_.order) {
    if (entry.is_downgrade) {
      const auto& d = module_.downgrades()[entry.index];
      auto p = evalWithLabel(d.value);
      auto decision = lattice::checkDowngrade(
          d.kind,
          d.kind == lattice::DowngradeKind::Declassify
              ? Label{p.label.c, d.to.i}
              : Label{d.to.c, p.label.i},
          d.to, d.principal);
      // The component being *moved by ordinary flow* must flow on its own.
      const bool residual_ok =
          d.kind == lattice::DowngradeKind::Declassify
              ? p.label.i.flowsTo(d.to.i)
              : p.label.c.flowsTo(d.to.c);
      values_[d.lhs.v] = std::move(p.value);
      if (decision.allowed && residual_ok) {
        labels_[d.lhs.v] = d.to;
      } else {
        labels_[d.lhs.v] = p.label;  // keep restrictive label
        events_.push_back({RuntimeEvent::Kind::DowngradeRejected, cycle_,
                           module_.signal(d.lhs).name, p.label, d.to,
                           decision.allowed ? "component moved by plain flow"
                                            : decision.reason});
      }
    } else {
      const auto& a = module_.assigns()[entry.index];
      auto p = evalWithLabel(a.rhs);
      values_[a.lhs.v] = std::move(p.value);
      labels_[a.lhs.v] = p.label;
    }
  }
}

void DynamicTracker::checkOutputs() {
  for (std::size_t i = 0; i < module_.signals().size(); ++i) {
    const auto& s = module_.signals()[i];
    if (s.kind != SignalKind::Output) continue;
    if (s.label.kind == hdl::LabelTerm::Kind::Unconstrained) continue;
    Label allowed;
    if (s.label.kind == hdl::LabelTerm::Kind::Static) {
      allowed = s.label.fixed;
    } else {
      const auto sel = values_[s.label.selector.v].toU64();
      allowed = s.label.by_value[sel];
    }
    if (!labels_[i].flowsTo(allowed)) {
      events_.push_back({RuntimeEvent::Kind::OutputLeak, cycle_, s.name,
                         labels_[i], allowed,
                         "output label exceeds its annotation"});
    }
  }
}

void DynamicTracker::step(unsigned n) {
  for (unsigned k = 0; k < n; ++k) {
    evalComb();
    checkOutputs();
    // Stage all updates against pre-edge state; several regWrites may
    // target the same register (later enabled writes win).
    std::map<std::uint32_t, Propagated> staged;
    for (const auto& rw : module_.regWrites()) {
      auto en = evalWithLabel(rw.enable);
      auto it = staged.find(rw.reg.v);
      if (it == staged.end()) {
        it = staged.emplace(rw.reg.v,
                            Propagated{values_[rw.reg.v], labels_[rw.reg.v]})
                 .first;
      }
      if (!en.value.isZero()) {
        auto next = evalWithLabel(rw.next);
        it->second.value = std::move(next.value);
        it->second.label = next.label.join(en.label);
      } else {
        // A suppressed write still reveals the enable: join its label into
        // the register (timing sensitivity).
        it->second.label = it->second.label.join(en.label);
      }
    }
    for (auto& [idx, p] : staged) {
      values_[idx] = std::move(p.value);
      labels_[idx] = p.label;
    }
    ++cycle_;
    evalComb();
  }
}

std::size_t DynamicTracker::eventCount(RuntimeEvent::Kind k) const {
  std::size_t n = 0;
  for (const auto& e : events_)
    if (e.kind == k) ++n;
  return n;
}

}  // namespace aesifc::ifc
