#include "ifc/suggest.h"

#include <map>
#include <set>

#include "ifc/checker.h"

namespace aesifc::ifc {

using hdl::LabelTerm;
using hdl::Module;
using hdl::SignalId;
using lattice::Label;

namespace {

std::string render(const Module& m, const LabelTerm& t) {
  switch (t.kind) {
    case LabelTerm::Kind::Static:
      return t.fixed.toString();
    case LabelTerm::Kind::Dependent: {
      std::string s = "DL(" + m.signal(t.selector).name + "): {";
      for (std::size_t v = 0; v < t.by_value.size(); ++v) {
        if (v) s += ", ";
        s += std::to_string(v) + "->" + t.by_value[v].toString();
      }
      return s + "}";
    }
    case LabelTerm::Kind::Unconstrained:
      break;
  }
  return "<unconstrained>";
}

}  // namespace

std::vector<LabelSuggestion> suggestOutputLabels(
    const Module& m, const std::vector<hdl::SignalId>& candidate_selectors) {
  std::vector<LabelSuggestion> out;
  const auto valuations =
      selectorValuations(m, 1u << 16, candidate_selectors);
  if (valuations.empty()) return out;  // selector space too large

  for (std::size_t i = 0; i < m.signals().size(); ++i) {
    const auto& sig = m.signals()[i];
    if (sig.kind != hdl::SignalKind::Output) continue;
    if (sig.label.kind != LabelTerm::Kind::Unconstrained) continue;
    const SignalId id{static_cast<std::uint32_t>(i)};

    const auto driver = m.driverOf(id);
    const auto dg = m.downgradeDriverOf(id);
    if (!driver.has_value() && !dg.has_value()) continue;

    // The inferred flow per valuation.
    std::vector<Label> flows;
    flows.reserve(valuations.size());
    for (const auto& pinned : valuations) {
      if (dg.has_value()) {
        flows.push_back(m.downgrades()[*dg].to);
      } else {
        flows.push_back(inferLabelUnder(m, *driver, pinned));
      }
    }

    LabelSuggestion s;
    s.signal = id;
    s.signal_name = sig.name;

    // Constant across valuations -> static label.
    bool constant = true;
    for (const auto& f : flows) {
      if (!(f == flows[0])) constant = false;
    }
    if (constant) {
      s.term = LabelTerm::of(flows[0]);
    } else {
      // The flow varies across valuations. For each selector build the
      // per-value *join* table (always a sound annotation: the flow under
      // any valuation is below the entry for that selector value) and pick
      // the selector whose table improves most over the global join.
      Label full_join = flows[0];
      for (const auto& f : flows) full_join = full_join.join(f);

      std::set<std::uint32_t> sels;
      for (const auto& pinned : valuations) {
        for (const auto& [k, v] : pinned) sels.insert(k);
      }
      LabelTerm best = LabelTerm::of(full_join);
      std::size_t best_score = 0;
      for (const auto sel_v : sels) {
        const SignalId sel{sel_v};
        const unsigned width = m.signal(sel).width;
        std::vector<Label> table(1u << width, Label::publicTrusted());
        for (std::size_t vi = 0; vi < valuations.size(); ++vi) {
          const auto val = valuations[vi].at(sel_v).toU64();
          table[val] = table[val].join(flows[vi]);
        }
        std::size_t score = 0;
        for (const auto& entry : table) {
          if (!(entry == full_join)) ++score;
        }
        if (score > best_score) {
          best_score = score;
          best = LabelTerm::dependent(sel, std::move(table));
        }
      }
      s.term = std::move(best);
    }
    s.rendered = render(m, s.term);
    out.push_back(std::move(s));
  }
  return out;
}

void applySuggestions(Module& m,
                      const std::vector<LabelSuggestion>& suggestions) {
  for (const auto& s : suggestions) {
    m.setLabel(s.signal, s.term);
  }
}

}  // namespace aesifc::ifc
