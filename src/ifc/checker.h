#pragma once
// Static information-flow checker over the HDL IR — the design-time half of
// the paper's methodology (Sections 2.3, 3.2). Given a module whose state
// elements (inputs and registers) carry label annotations, the checker:
//
//  1. infers the label of every expression as the join of its operand
//     labels (value flows) plus the labels of control operands (implicit
//     flows through mux conditions);
//  2. treats register enables as flows *into time*: the label of an enable
//     joins into the register's label, so stall- or secret-dependent update
//     timing is flagged exactly like the `valid` error of Fig. 6;
//  3. handles ChiselFlow-style dependent labels DL(sel) by SecVerilog-style
//     per-value case analysis: it enumerates every valuation of the
//     dependent-label selectors and re-checks all flows with the selectors
//     pinned, partially evaluating expressions so that branches decided by
//     the pinned selectors are pruned (this is what makes the Fig. 3 cache
//     tags and the Fig. 8 meet-gated stall verify);
//  4. checks every explicit downgrade against the nonmalleable rules of
//     Eq. 1 (the master-key scenario of Section 3.2.2 fails here when the
//     acting principal lacks integrity).
//
// A passing report is the artifact the paper calls "statically verified to
// be free of disallowed information flows, including timing channels".

#include <map>
#include <string>
#include <vector>

#include "hdl/ir.h"
#include "ifc/violation.h"

namespace aesifc::ifc {

struct CheckerOptions {
  // Upper bound on the number of selector valuations to enumerate; designs
  // needing more are rejected as ill-formed (selectors must stay narrow).
  std::size_t max_valuations = 1u << 16;
  // Deduplicate identical violations found under different valuations.
  bool dedup = true;
};

Report check(const hdl::Module& m, const CheckerOptions& opts = {});

// Resolve a signal's annotated label under a pinned selector valuation.
// Exposed for the policy engine and tests.
lattice::Label resolveAnnotation(const hdl::Module& m, hdl::SignalId s,
                                 const std::map<std::uint32_t, BitVec>& pinned);

// The label the checker infers for an expression under a pinned selector
// valuation (with mux/And/Or pruning). Exposed for the label-suggestion
// tool (src/ifc/suggest.h) and tests.
lattice::Label inferLabelUnder(const hdl::Module& m, hdl::ExprId e,
                               const std::map<std::uint32_t, BitVec>& pinned);

// All valuations of the module's dependent-label selectors (the space the
// checker enumerates) plus any `extra` candidate selectors. Returns an
// empty vector when the space exceeds `max_valuations`.
std::vector<std::map<std::uint32_t, BitVec>> selectorValuations(
    const hdl::Module& m, std::size_t max_valuations = 1u << 16,
    const std::vector<hdl::SignalId>& extra = {});

}  // namespace aesifc::ifc
