#pragma once
// Empirical constant-time checker: the dynamic complement of the static
// timing analysis. Runs a design twice with identical public input
// sequences but independently random secret inputs, and compares the
// designated public outputs cycle by cycle. Any divergence is a measured
// timing/value channel from the secrets to the public view — the dynamic
// witness of the violations the static checker reports on Fig. 6-style
// designs.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "hdl/ir.h"

namespace aesifc::ifc {

struct CtCheckConfig {
  unsigned cycles = 64;       // simulated cycles per trial
  unsigned trials = 16;       // independent secret pairs
  std::uint64_t seed = 1;
  // Optional protocol-shaped driver for public inputs: (signal, cycle) ->
  // value. When empty, publics are driven with a shared random stream.
  // Protocol inputs (start pulses, handshakes) usually need this — a
  // uniformly random `start` keeps restarting an FSM before its
  // data-dependent latency can manifest.
  std::function<aesifc::BitVec(hdl::SignalId, unsigned)> drive_public;
  // Hold each secret at one random value for the whole trial (a key does
  // not change mid-operation) instead of re-randomizing every cycle.
  bool hold_secrets = false;
};

struct CtCheckResult {
  bool constant = true;           // no divergence observed
  std::uint64_t first_divergence_cycle = 0;
  std::string diverging_signal;
  unsigned diverging_trial = 0;

  std::string toString() const;
};

// `secrets`/`publics` partition the module's inputs (every input must be in
// exactly one list); `observed` are the outputs a public observer sees.
CtCheckResult checkConstantTime(const hdl::Module& m,
                                const std::vector<hdl::SignalId>& secrets,
                                const std::vector<hdl::SignalId>& publics,
                                const std::vector<hdl::SignalId>& observed,
                                const CtCheckConfig& cfg = {});

}  // namespace aesifc::ifc
