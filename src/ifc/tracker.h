#pragma once
// Dynamic information-flow tracking over the HDL IR — the "tracking logic"
// alternative to static typing the paper cites (GLIFT, RTLIFT). Every
// signal carries a shadow label; labels propagate alongside values each
// cycle. Two precision modes are provided:
//   - Conservative (GLIFT-flavored): a mux joins the labels of both data
//     branches and the condition.
//   - Precise (RTLIFT-flavored): a mux joins the condition's label with the
//     label of the branch actually selected at runtime.
// Register enables join into register labels (updates' timing is observable),
// and downgrade nodes apply the nonmalleable runtime check; rejected
// downgrades keep the restrictive label and log an event — mirroring the
// accelerator's runtime tag checkers.

#include <cstdint>
#include <string>
#include <vector>

#include "hdl/eval.h"
#include "hdl/ir.h"
#include "lattice/downgrade.h"

namespace aesifc::ifc {

enum class TrackPrecision { Conservative, Precise };

struct RuntimeEvent {
  enum class Kind { OutputLeak, DowngradeRejected };
  Kind kind = Kind::OutputLeak;
  std::uint64_t cycle = 0;
  std::string signal;
  lattice::Label observed{};
  lattice::Label allowed{};
  std::string message;

  std::string toString() const;
};

class DynamicTracker {
 public:
  explicit DynamicTracker(const hdl::Module& m,
                          TrackPrecision prec = TrackPrecision::Precise);

  void reset();

  // Drive an input with a value carrying a label.
  void poke(const std::string& name, aesifc::BitVec v, lattice::Label l);
  void poke(hdl::SignalId s, aesifc::BitVec v, lattice::Label l);

  const aesifc::BitVec& value(const std::string& name) const;
  lattice::Label label(const std::string& name) const;
  const aesifc::BitVec& value(hdl::SignalId s) const { return values_[s.v]; }
  lattice::Label label(hdl::SignalId s) const { return labels_[s.v]; }

  void evalComb();
  void step(unsigned n = 1);

  std::uint64_t cycle() const { return cycle_; }
  const std::vector<RuntimeEvent>& events() const { return events_; }
  std::size_t eventCount(RuntimeEvent::Kind k) const;

 private:
  struct Propagated {
    aesifc::BitVec value;
    lattice::Label label;
  };
  Propagated evalWithLabel(hdl::ExprId e);
  void checkOutputs();
  hdl::SignalId mustFind(const std::string& name) const;

  const hdl::Module& module_;
  TrackPrecision precision_;
  hdl::CombSchedule schedule_;
  std::vector<aesifc::BitVec> values_;
  std::vector<lattice::Label> labels_;
  std::vector<RuntimeEvent> events_;
  std::uint64_t cycle_ = 0;
};

}  // namespace aesifc::ifc
