#include "ifc/policy.h"

#include <sstream>

namespace aesifc::ifc {

const std::vector<FlowPolicy>& table1Policies() {
  static const std::vector<FlowPolicy> kPolicies = {
      {1, "Keys",
       "A classified key cannot be read out by a less confidential user",
       PolicyDimension::Confidentiality, "Key registers l(key)",
       "User registers/outputs l(user)",
       "key -/-> user if l(key) !<=C l(user)"},
      {2, "Keys", "A protected key cannot be modified by a less trusted user",
       PolicyDimension::Integrity, "User inputs l(user)",
       "Key registers l(key)", "user -/-> key if l(user) !<=I l(key)"},
      {3, "Keys", "A classified key cannot be used by a less trusted user",
       PolicyDimension::Confidentiality, "Key registers l(key)",
       "Ciphertext output (bottom)",
       "ciphertext -/-> output if l(key) !<=C r(l(user))"},
      {4, "Plaintext",
       "A low confidential user cannot read plaintext from a higher "
       "confidential user",
       PolicyDimension::Confidentiality, "Plaintext buffer l(pt)",
       "User registers/outputs l(user)",
       "plaintext -/-> user if l(pt) !<=C l(user)"},
      {5, "Plaintext", "A less trusted user cannot modify data beyond its authority",
       PolicyDimension::Integrity, "User inputs l(user)",
       "Data buffers/registers l(data)",
       "user -/-> data if l(user) !<=I l(data)"},
      {6, "Configs",
       "Configuration registers readable by all users, writable only by the "
       "supervisor",
       PolicyDimension::Integrity, "User inputs l(user)",
       "Configuration registers l(cr)",
       "cr -> user as bottom <=C l(user); user -/-> cr as l(user) !<=I top; "
       "sup -> cr as l(sup) <=I top"},
  };
  return kPolicies;
}

std::string renderTable1() {
  std::ostringstream os;
  os << "Table 1: security requirements and information flow policies\n";
  for (const auto& p : table1Policies()) {
    os << "  " << p.id << ". [" << p.asset << "] ("
       << (p.dim == PolicyDimension::Confidentiality ? "C" : "I") << ") "
       << p.requirement << "\n"
       << "     source: " << p.source << "\n"
       << "     sink:   " << p.sink << "\n"
       << "     rule:   " << p.restriction << "\n";
  }
  return os.str();
}

}  // namespace aesifc::ifc
