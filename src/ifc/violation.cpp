#include "ifc/violation.h"

#include <sstream>

namespace aesifc::ifc {

std::string toString(ViolationKind k) {
  switch (k) {
    case ViolationKind::FlowViolation: return "flow-violation";
    case ViolationKind::TimingViolation: return "timing-violation";
    case ViolationKind::DowngradeRejected: return "downgrade-rejected";
    case ViolationKind::MissingAnnotation: return "missing-annotation";
    case ViolationKind::IllFormedDependent: return "ill-formed-dependent-label";
  }
  return "?";
}

std::string Violation::toString() const {
  std::ostringstream os;
  os << "[" << ifc::toString(kind) << "] sink=" << sink;
  if (!source.empty()) os << " source=" << source;
  os << " inferred=" << inferred.toString()
     << " required=" << required.toString();
  if (!valuation.empty()) os << " at " << valuation;
  if (!message.empty()) os << " : " << message;
  return os.str();
}

std::size_t Report::count(ViolationKind k) const {
  std::size_t n = 0;
  for (const auto& v : violations)
    if (v.kind == k) ++n;
  return n;
}

bool Report::mentionsSink(const std::string& name) const {
  for (const auto& v : violations)
    if (v.sink == name) return true;
  return false;
}

std::string Report::toString() const {
  std::ostringstream os;
  if (ok()) {
    os << "IFC check passed: no disallowed information flows.\n";
    return os.str();
  }
  os << "IFC check FAILED: " << violations.size() << " violation(s)\n";
  for (const auto& v : violations) os << "  " << v.toString() << "\n";
  return os.str();
}

}  // namespace aesifc::ifc
