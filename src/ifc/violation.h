#pragma once
// Violation records produced by the static checker and the dynamic tracker.

#include <string>
#include <vector>

#include "lattice/label.h"

namespace aesifc::ifc {

enum class ViolationKind {
  FlowViolation,        // inferred label does not flow to the annotation
  TimingViolation,      // flow into a register's update condition (enable)
  DowngradeRejected,    // nonmalleable downgrading constraint failed
  MissingAnnotation,    // state element (input/reg) without a label
  IllFormedDependent,   // dependent-label selector not statically labeled, etc.
};

std::string toString(ViolationKind k);

struct Violation {
  ViolationKind kind = ViolationKind::FlowViolation;
  std::string sink;          // signal receiving the disallowed flow
  std::string source;        // description of the offending source/expression
  lattice::Label inferred{}; // label deduced from the implementation
  lattice::Label required{}; // label the designer specified
  std::string valuation;     // example dependent-label valuation exhibiting it
  std::string message;

  std::string toString() const;
};

struct Report {
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  std::size_t count(ViolationKind k) const;
  bool mentionsSink(const std::string& name) const;
  std::string toString() const;
};

}  // namespace aesifc::ifc
