#include "ifc/checker.h"

#include <set>
#include <sstream>

#include "hdl/eval.h"
#include "lattice/downgrade.h"

namespace aesifc::ifc {

using hdl::ExprId;
using hdl::LabelTerm;
using hdl::Module;
using hdl::Op;
using hdl::SignalId;
using hdl::SignalKind;
using lattice::Label;

namespace {

struct Ctx {
  const Module& m;
  const std::map<std::uint32_t, BitVec>& pinned;
  std::string valuation;
  std::map<std::uint32_t, Label> expr_cache;
  std::map<std::uint32_t, Label> wire_cache;
  std::set<std::uint32_t> visiting;
};

Label labelOfSignal(Ctx& ctx, SignalId s);

Label resolveTerm(const Module& m, const LabelTerm& t,
                  const std::map<std::uint32_t, BitVec>& pinned) {
  switch (t.kind) {
    case LabelTerm::Kind::Static:
      return t.fixed;
    case LabelTerm::Kind::Dependent: {
      if (auto it = pinned.find(t.selector.v); it != pinned.end()) {
        return t.by_value[it->second.toU64()];
      }
      // Selector not pinned (should not happen during checking since all
      // selectors are enumerated): conservative join over the table.
      Label l = t.by_value.front();
      for (const auto& e : t.by_value) l = l.join(e);
      (void)m;
      return l;
    }
    case LabelTerm::Kind::Unconstrained:
      break;
  }
  // Unconstrained state elements are reported separately; treat as least
  // restrictive to avoid cascading noise.
  return Label::publicTrusted();
}

Label inferExprLabel(Ctx& ctx, ExprId id) {
  if (auto it = ctx.expr_cache.find(id.v); it != ctx.expr_cache.end())
    return it->second;
  const auto& e = ctx.m.expr(id);
  Label l = Label::publicTrusted();
  switch (e.op) {
    case Op::Const:
      break;
    case Op::SignalRef:
      l = labelOfSignal(ctx, e.sig);
      break;
    case Op::Mux: {
      // Pruning: if the condition is decided by the pinned selectors, only
      // the condition's own (pruned) label and the taken branch flow. This
      // is the per-value reasoning that lets dependent-label designs
      // (Fig. 3, Fig. 5) verify.
      auto cond = hdl::partialEval(ctx.m, e.args[0], ctx.pinned);
      if (cond.has_value()) {
        const ExprId taken = cond->isZero() ? e.args[2] : e.args[1];
        l = inferExprLabel(ctx, e.args[0]).join(inferExprLabel(ctx, taken));
      } else {
        l = inferExprLabel(ctx, e.args[0])
                .join(inferExprLabel(ctx, e.args[1]))
                .join(inferExprLabel(ctx, e.args[2]));
      }
      break;
    }
    case Op::And:
    case Op::Or: {
      // Short-circuit pruning: a decided absorbing operand (0 for And, all
      // ones for Or) alone determines the result; the other side carries no
      // information into it.
      auto a = hdl::partialEval(ctx.m, e.args[0], ctx.pinned);
      auto b = hdl::partialEval(ctx.m, e.args[1], ctx.pinned);
      const auto absorbing = [&](const BitVec& v) {
        return e.op == Op::And ? v.isZero()
                               : v == BitVec::allOnes(e.width);
      };
      if (a.has_value() && absorbing(*a)) {
        l = inferExprLabel(ctx, e.args[0]);
      } else if (b.has_value() && absorbing(*b)) {
        l = inferExprLabel(ctx, e.args[1]);
      } else {
        l = inferExprLabel(ctx, e.args[0]).join(inferExprLabel(ctx, e.args[1]));
      }
      break;
    }
    default:
      for (auto a : e.args) l = l.join(inferExprLabel(ctx, a));
      break;
  }
  ctx.expr_cache.emplace(id.v, l);
  return l;
}

Label labelOfSignal(Ctx& ctx, SignalId s) {
  const auto& sig = ctx.m.signal(s);
  if (sig.kind == SignalKind::Input || sig.kind == SignalKind::Reg) {
    return resolveTerm(ctx.m, sig.label, ctx.pinned);
  }
  // Wire/Output: label comes from the driver (or the downgrade target).
  if (auto it = ctx.wire_cache.find(s.v); it != ctx.wire_cache.end())
    return it->second;
  if (ctx.visiting.count(s.v)) return Label::publicTrusted();  // cycle guard
  ctx.visiting.insert(s.v);
  Label l = Label::publicTrusted();
  if (auto dg = ctx.m.downgradeDriverOf(s)) {
    l = ctx.m.downgrades()[*dg].to;
  } else if (auto d = ctx.m.driverOf(s)) {
    l = inferExprLabel(ctx, *d);
  }
  ctx.visiting.erase(s.v);
  ctx.wire_cache.emplace(s.v, l);
  return l;
}

// Structural expression equivalence (same shape, constants, and signal
// references). Used to match the enables of tag/data register pairs for the
// label-update rule — after an emit/parse round trip the enables are equal
// trees but distinct nodes.
bool exprEquiv(const Module& m, ExprId a, ExprId b) {
  if (a == b) return true;
  const auto& ea = m.expr(a);
  const auto& eb = m.expr(b);
  if (ea.op != eb.op || ea.width != eb.width || ea.lo != eb.lo ||
      ea.args.size() != eb.args.size())
    return false;
  if (ea.op == Op::Const && !(ea.cval == eb.cval)) return false;
  if (ea.op == Op::SignalRef && !(ea.sig == eb.sig)) return false;
  if (ea.op == Op::Lut && ea.table != eb.table) return false;
  for (std::size_t i = 0; i < ea.args.size(); ++i) {
    if (!exprEquiv(m, ea.args[i], eb.args[i])) return false;
  }
  return true;
}

std::string describeSource(const Module& m, ExprId e) {
  auto leaves = hdl::leafDeps(m, e);
  std::string s;
  for (std::size_t i = 0; i < leaves.size() && i < 4; ++i) {
    if (i) s += ",";
    s += m.signal(leaves[i]).name;
  }
  if (leaves.size() > 4) s += ",...";
  return s.empty() ? "<const>" : s;
}

struct ValuationEnum {
  // Free selectors (inputs/registers) are enumerated exhaustively; derived
  // selectors (wires whose value is a function of the free ones) are
  // *computed* per valuation by partial evaluation, so impossible
  // combinations — e.g. an instance-boundary wire that always equals the
  // selector driving it — are never visited.
  std::vector<SignalId> free;
  std::vector<unsigned> widths;
  std::vector<SignalId> derived;

  std::size_t count() const {
    std::size_t n = 1;
    for (auto w : widths) n <<= w;
    return n;
  }

  std::map<std::uint32_t, BitVec> valuation(const Module& m,
                                            std::size_t idx) const {
    std::map<std::uint32_t, BitVec> pinned;
    for (std::size_t i = 0; i < free.size(); ++i) {
      const std::uint64_t v = idx & ((1ull << widths[i]) - 1);
      pinned.emplace(free[i].v, BitVec(widths[i], v));
      idx >>= widths[i];
    }
    for (const auto w : derived) {
      hdl::ExprId driver{};
      if (auto d = m.driverOf(w)) {
        driver = *d;
      } else if (auto dg = m.downgradeDriverOf(w)) {
        driver = m.downgrades()[*dg].value;
      }
      auto v = hdl::partialEval(m, driver, pinned);
      // Classification guarantees decidability.
      pinned.emplace(w.v, std::move(*v));
    }
    return pinned;
  }

  std::string describe(const Module& m,
                       const std::map<std::uint32_t, BitVec>& pinned) const {
    std::string s;
    for (auto sel : free) {
      if (!s.empty()) s += ",";
      s += m.signal(sel).name + "=" + pinned.at(sel.v).toHex();
    }
    return s.empty() ? "" : "[" + s + "]";
  }
};

// Collects the transitive selector set and splits it into enumerated and
// derived parts. `extra` adds candidate selectors (for the suggestion
// tool). Returns false when a selector is unusable (reported by caller).
struct SelectorIssue {
  SignalId signal{};
  std::string why;
};

ValuationEnum buildValuationEnum(const Module& m,
                                 const std::vector<SignalId>& extra,
                                 std::vector<SelectorIssue>* issues) {
  ValuationEnum venum;
  std::set<std::uint32_t> seen;
  std::vector<SignalId> worklist = extra;
  for (const auto& s : m.signals()) {
    if (s.label.kind == LabelTerm::Kind::Dependent)
      worklist.push_back(s.label.selector);
  }
  std::vector<SignalId> all;
  while (!worklist.empty()) {
    const SignalId sel = worklist.back();
    worklist.pop_back();
    if (!seen.insert(sel.v).second) continue;
    const auto& selsig = m.signal(sel);
    if (selsig.label.kind == LabelTerm::Kind::Unconstrained &&
        (selsig.kind == SignalKind::Input || selsig.kind == SignalKind::Reg)) {
      if (issues != nullptr) {
        issues->push_back({sel, "dependent-label selector must carry a label"});
      }
      continue;
    }
    if (selsig.label.kind == LabelTerm::Kind::Dependent &&
        !seen.count(selsig.label.selector.v)) {
      worklist.push_back(selsig.label.selector);
    }
    all.push_back(sel);
  }

  // A wire selector is derived when its value is a function of the
  // enumerated state-element selectors; otherwise it is enumerated freely.
  const auto isStateSelector = [&](SignalId s) {
    const auto k = m.signal(s).kind;
    return k == SignalKind::Input || k == SignalKind::Reg;
  };
  std::set<std::uint32_t> free_set;
  for (const auto s : all) {
    if (isStateSelector(s)) free_set.insert(s.v);
  }
  for (const auto s : all) {
    if (isStateSelector(s)) {
      venum.free.push_back(s);
      venum.widths.push_back(m.signal(s).width);
      continue;
    }
    hdl::ExprId driver{};
    if (auto d = m.driverOf(s)) {
      driver = *d;
    } else if (auto dg = m.downgradeDriverOf(s)) {
      driver = m.downgrades()[*dg].value;
    }
    bool decidable = driver.valid();
    if (decidable) {
      for (const auto dep : hdl::leafDeps(m, driver)) {
        if (!free_set.count(dep.v)) {
          decidable = false;
          break;
        }
      }
    }
    if (decidable) {
      venum.derived.push_back(s);
    } else {
      venum.free.push_back(s);
      venum.widths.push_back(m.signal(s).width);
    }
  }
  return venum;
}

}  // namespace

lattice::Label resolveAnnotation(const Module& m, SignalId s,
                                 const std::map<std::uint32_t, BitVec>& pinned) {
  return resolveTerm(m, m.signal(s).label, pinned);
}

lattice::Label inferLabelUnder(const Module& m, ExprId e,
                               const std::map<std::uint32_t, BitVec>& pinned) {
  Ctx ctx{m, pinned, "", {}, {}, {}};
  return inferExprLabel(ctx, e);
}

std::vector<std::map<std::uint32_t, BitVec>> selectorValuations(
    const Module& m, std::size_t max_valuations,
    const std::vector<hdl::SignalId>& extra) {
  ValuationEnum venum = buildValuationEnum(m, extra, nullptr);
  std::vector<std::map<std::uint32_t, BitVec>> out;
  if (venum.count() > max_valuations) return out;
  out.reserve(venum.count());
  for (std::size_t vi = 0; vi < venum.count(); ++vi) {
    out.push_back(venum.valuation(m, vi));
  }
  return out;
}

Report check(const Module& m, const CheckerOptions& opts) {
  Report report;
  m.validate();

  auto addViolation = [&](Violation v) {
    if (opts.dedup) {
      for (const auto& existing : report.violations) {
        if (existing.kind == v.kind && existing.sink == v.sink &&
            existing.source == v.source && existing.message == v.message)
          return;
      }
    }
    report.violations.push_back(std::move(v));
  };

  // 1. Every state element must carry a label (security-typed HDL rule).
  for (std::size_t i = 0; i < m.signals().size(); ++i) {
    const auto& s = m.signals()[i];
    if ((s.kind == SignalKind::Input || s.kind == SignalKind::Reg) &&
        s.label.kind == LabelTerm::Kind::Unconstrained) {
      addViolation({ViolationKind::MissingAnnotation, s.name, "",
                    Label::publicTrusted(), Label::publicTrusted(), "",
                    "state element has no security label"});
    }
  }

  // 2. Collect dependent-label selectors (transitively: a selector may
  //    itself carry a dependent label, e.g. a self-describing tag register)
  //    and split them into enumerated vs derived.
  std::vector<SelectorIssue> issues;
  ValuationEnum venum = buildValuationEnum(m, {}, &issues);
  for (const auto& issue : issues) {
    addViolation({ViolationKind::IllFormedDependent,
                  m.signal(issue.signal).name, "", Label::publicTrusted(),
                  Label::publicTrusted(), "", issue.why});
  }
  if (venum.count() > opts.max_valuations) {
    addViolation({ViolationKind::IllFormedDependent, m.name(), "",
                  Label::publicTrusted(), Label::publicTrusted(), "",
                  "dependent-label selector space too large to enumerate"});
    return report;
  }

  // 3. Per-valuation flow checking.
  for (std::size_t vi = 0; vi < venum.count(); ++vi) {
    const auto pinned = venum.valuation(m, vi);
    Ctx ctx{m, pinned, venum.describe(m, pinned), {}, {}, {}};

    // 3a. Well-formedness: the selector's label must flow to every resolved
    //     label of the signals it classifies (the level-determining value
    //     must be visible wherever the data may go).
    for (const auto& s : m.signals()) {
      if (s.label.kind != LabelTerm::Kind::Dependent) continue;
      // labelOfSignal resolves annotations and infers unannotated wires
      // (e.g. derived instance-boundary selectors).
      const Label sel_label = labelOfSignal(ctx, s.label.selector);
      const Label resolved = resolveTerm(m, s.label, pinned);
      if (!sel_label.flowsTo(resolved)) {
        addViolation({ViolationKind::IllFormedDependent, s.name,
                      m.signal(s.label.selector).name, sel_label, resolved,
                      ctx.valuation,
                      "selector label does not flow to the dependent level"});
      }
    }

    // 3b. Continuous assignments.
    for (const auto& a : m.assigns()) {
      const auto& lhs = m.signal(a.lhs);
      if (lhs.label.kind == LabelTerm::Kind::Unconstrained) continue;
      const Label need = resolveTerm(m, lhs.label, pinned);
      const Label got = inferExprLabel(ctx, a.rhs);
      if (!got.flowsTo(need)) {
        addViolation({ViolationKind::FlowViolation, lhs.name,
                      describeSource(m, a.rhs), got, need, ctx.valuation,
                      "inferred label does not flow to annotation"});
      }
    }

    // 3c. Register updates; enables are flows into time.
    for (const auto& rw : m.regWrites()) {
      const auto& r = m.signal(rw.reg);
      if (r.label.kind == LabelTerm::Kind::Unconstrained) continue;

      // SecVerilog-style label update: when the sink's dependent-label
      // selector is a register written under the *same* enable (tag and
      // data move together through a pipeline stage), the write must be
      // checked against the label at the selector's NEW value.
      Label need = resolveTerm(m, r.label, pinned);
      if (r.label.kind == LabelTerm::Kind::Dependent) {
        for (const auto& sw : m.regWrites()) {
          if (!(sw.reg == r.label.selector) ||
              !exprEquiv(m, sw.enable, rw.enable))
            continue;
          if (auto nv = hdl::partialEval(m, sw.next, pinned)) {
            need = r.label.by_value[nv->toU64()];
          }
          break;
        }
      }

      auto en = hdl::partialEval(m, rw.enable, pinned);
      if (en.has_value() && en->isZero()) continue;  // never writes here

      const Label data = inferExprLabel(ctx, rw.next);
      // The inference prunes absorbing And/Or operands and decided mux
      // conditions, so a selector-decided enable contributes only the labels
      // of the signals that decided it.
      const Label when = inferExprLabel(ctx, rw.enable);
      if (!data.join(when).flowsTo(need)) {
        const bool timing_only = data.flowsTo(need);
        addViolation({timing_only ? ViolationKind::TimingViolation
                                  : ViolationKind::FlowViolation,
                      r.name,
                      timing_only ? describeSource(m, rw.enable)
                                  : describeSource(m, rw.next),
                      data.join(when), need, ctx.valuation,
                      timing_only
                          ? "register update timing depends on a more "
                            "restrictive signal"
                          : "inferred label does not flow to annotation"});
      }
    }

    // 3d. Downgrades: nonmalleability (Eq. 1) plus the flow into the sink.
    for (const auto& d : m.downgrades()) {
      const Label from = inferExprLabel(ctx, d.value);
      lattice::DowngradeDecision decision;
      if (d.kind == lattice::DowngradeKind::Declassify) {
        // Integrity must move by ordinary flow; only conf is downgraded.
        if (!from.i.flowsTo(d.to.i)) {
          decision = {false, "declassification cannot raise integrity from " +
                                 from.i.toString() + " to " + d.to.i.toString()};
        } else {
          decision = lattice::checkDeclassify(Label{from.c, d.to.i}, d.to,
                                              d.principal);
        }
      } else {
        if (!from.c.flowsTo(d.to.c)) {
          decision = {false, "endorsement cannot lower confidentiality from " +
                                 from.c.toString() + " to " + d.to.c.toString()};
        } else {
          decision =
              lattice::checkEndorse(Label{d.to.c, from.i}, d.to, d.principal);
        }
      }
      const auto& lhs = m.signal(d.lhs);
      if (!decision.allowed) {
        addViolation({ViolationKind::DowngradeRejected, lhs.name,
                      describeSource(m, d.value), from, d.to, ctx.valuation,
                      (d.note.empty() ? "" : d.note + ": ") + decision.reason});
      }
      if (lhs.label.kind != LabelTerm::Kind::Unconstrained) {
        const Label need = resolveTerm(m, lhs.label, pinned);
        if (!d.to.flowsTo(need)) {
          addViolation({ViolationKind::FlowViolation, lhs.name,
                        describeSource(m, d.value), d.to, need, ctx.valuation,
                        "downgraded label does not flow to the sink annotation"});
        }
      }
    }
  }

  return report;
}

}  // namespace aesifc::ifc
