#include "ifc/ni_check.h"

#include <map>
#include <set>
#include <sstream>

#include "ifc/checker.h"
#include "sim/simulator.h"

namespace aesifc::ifc {

using hdl::LabelTerm;
using hdl::Module;
using hdl::SignalId;
using hdl::SignalKind;
using lattice::Label;

std::string NiWitness::toString() const {
  std::ostringstream os;
  os << "interference at output '" << output << "':";
  os << " run A {";
  for (const auto& [n, v] : inputs_a) os << " " << n << "=" << v.toHex();
  os << " } vs run B {";
  for (const auto& [n, v] : inputs_b) os << " " << n << "=" << v.toHex();
  os << " }";
  return os.str();
}

namespace {

struct BucketEntry {
  std::vector<std::pair<std::string, aesifc::BitVec>> assignment;
  std::vector<std::pair<std::string, aesifc::BitVec>> observed;
};

}  // namespace

NiResult checkNoninterference(const Module& m, const Label& observer,
                              unsigned max_input_bits) {
  NiResult result;
  for (const auto& s : m.signals()) {
    if (s.kind == SignalKind::Reg) {
      result.status = NiResult::Status::Unsupported;
      result.note = "sequential module (register '" + s.name + "')";
      return result;
    }
  }
  if (!m.downgrades().empty()) {
    result.status = NiResult::Status::Unsupported;
    result.note = "module contains downgrades (intentional NI exceptions)";
    return result;
  }

  std::vector<SignalId> inputs;
  unsigned total_bits = 0;
  for (std::size_t i = 0; i < m.signals().size(); ++i) {
    if (m.signals()[i].kind == SignalKind::Input) {
      inputs.push_back(SignalId{static_cast<std::uint32_t>(i)});
      total_bits += m.signals()[i].width;
    }
  }
  if (total_bits > max_input_bits) {
    result.status = NiResult::Status::Unsupported;
    result.note = "input space too large (" + std::to_string(total_bits) +
                  " bits)";
    return result;
  }

  std::vector<SignalId> outputs;
  for (std::size_t i = 0; i < m.signals().size(); ++i) {
    const auto& s = m.signals()[i];
    if (s.kind == SignalKind::Output &&
        s.label.kind != LabelTerm::Kind::Unconstrained) {
      outputs.push_back(SignalId{static_cast<std::uint32_t>(i)});
    }
  }

  sim::Simulator sim{m};
  std::map<std::vector<std::uint8_t>, BucketEntry> buckets;

  const std::uint64_t space = 1ull << total_bits;
  for (std::uint64_t idx = 0; idx < space; ++idx) {
    // Decode the index into per-input values and drive the design.
    std::map<std::uint32_t, aesifc::BitVec> pinned;
    std::vector<std::pair<std::string, aesifc::BitVec>> assignment;
    std::uint64_t rest = idx;
    for (const auto in : inputs) {
      const unsigned w = m.signal(in).width;
      const aesifc::BitVec v(w, rest & ((w >= 64) ? ~0ull : ((1ull << w) - 1)));
      rest >>= w;
      sim.poke(in, v);
      pinned.emplace(in.v, v);
      assignment.emplace_back(m.signal(in).name, v);
    }
    sim.evalComb();

    // The observer's view of the inputs (resolved under this valuation).
    std::vector<std::uint8_t> key;
    for (const auto in : inputs) {
      const Label l = resolveAnnotation(m, in, pinned);
      if (!l.flowsTo(observer)) continue;
      key.push_back(static_cast<std::uint8_t>(in.v));
      const auto& v = pinned.at(in.v);
      for (unsigned b = 0; b < v.width(); b += 8)
        key.push_back(v.byte(b / 8));
    }

    // The observer's view of the outputs.
    std::vector<std::pair<std::string, aesifc::BitVec>> observed;
    for (const auto out : outputs) {
      const Label l = resolveAnnotation(m, out, pinned);
      if (!l.flowsTo(observer)) continue;
      observed.emplace_back(m.signal(out).name, sim.peek(out));
    }

    auto [it, inserted] = buckets.emplace(
        std::move(key), BucketEntry{assignment, observed});
    if (!inserted) {
      const auto& prior = it->second;
      // Visibility is consistent within a bucket (selectors visible to the
      // observer have equal values here; invisible selectors cannot make
      // their dependents visible).
      for (std::size_t k = 0; k < observed.size(); ++k) {
        if (!(observed[k].second == prior.observed[k].second)) {
          result.status = NiResult::Status::Interference;
          NiWitness w;
          w.inputs_a = prior.assignment;
          w.inputs_b = assignment;
          w.output = observed[k].first;
          result.witness = std::move(w);
          return result;
        }
      }
    }
  }
  return result;
}

NiResult checkNoninterferenceAllObservers(const Module& m,
                                          unsigned max_input_bits) {
  // Candidate observer levels: every label mentioned by an annotation.
  std::set<std::pair<std::uint16_t, std::uint16_t>> seen;
  std::vector<Label> observers;
  auto add = [&](const Label& l) {
    if (seen.insert({l.c.cats.mask(), l.i.cats.mask()}).second)
      observers.push_back(l);
  };
  for (const auto& s : m.signals()) {
    if (s.label.kind == LabelTerm::Kind::Static) add(s.label.fixed);
    if (s.label.kind == LabelTerm::Kind::Dependent) {
      for (const auto& l : s.label.by_value) add(l);
    }
  }

  NiResult last;
  for (const auto& obs : observers) {
    const auto r = checkNoninterference(m, obs, max_input_bits);
    if (r.status != NiResult::Status::Noninterferent) return r;
    last = r;
  }
  return last;
}

}  // namespace aesifc::ifc
