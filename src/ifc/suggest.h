#pragma once
// Label suggestion — a prototype of the paper's future-work direction
// ("automating the formulation procedure", Section 6). Given a module whose
// state elements are labeled but whose outputs are not, infer the least
// restrictive annotation each output admits:
//   - a static label when the inferred flow is the same under every
//     dependent-label valuation,
//   - a ChiselFlow-style dependent label DL(sel) when the flow varies with
//     exactly one selector (the Fig. 3 pattern, recovered automatically),
//   - otherwise the join over all valuations.
// A design annotated with the suggestions is checker-clean by construction.

#include <string>
#include <vector>

#include "hdl/ir.h"

namespace aesifc::ifc {

struct LabelSuggestion {
  hdl::SignalId signal{};
  std::string signal_name;
  hdl::LabelTerm term;   // the suggested annotation
  std::string rendered;  // human-readable form, e.g. "DL(way): {...}"
};

// Suggestions for every *unconstrained* output of `m`. Outputs that already
// carry annotations are left alone. `candidate_selectors` names additional
// narrow signals the tool may classify outputs by (beyond the selectors
// already used by dependent labels in the design).
std::vector<LabelSuggestion> suggestOutputLabels(
    const hdl::Module& m,
    const std::vector<hdl::SignalId>& candidate_selectors = {});

// Apply the suggestions to the module (sets the outputs' label terms).
void applySuggestions(hdl::Module& m,
                      const std::vector<LabelSuggestion>& suggestions);

}  // namespace aesifc::ifc
