#pragma once
// First-class encodings of Table 1: the six security requirements of a
// crypto accelerator and their equivalent information-flow policies. The
// policy engine in src/soc evaluates each row against the behavioral
// accelerator (baseline vs. protected) and produces verdicts; the bench
// `bench_table1_policies` renders the table the paper prints.

#include <string>
#include <vector>

namespace aesifc::ifc {

enum class PolicyDimension { Confidentiality, Integrity };

struct FlowPolicy {
  int id = 0;                  // row number in Table 1
  std::string asset;           // Keys / Plaintext / Configs
  std::string requirement;     // natural-language requirement
  PolicyDimension dim = PolicyDimension::Confidentiality;
  std::string source;          // source object and label
  std::string sink;            // sink object and label
  std::string restriction;     // the forbidden/allowed flow condition
};

// The six rows of Table 1.
const std::vector<FlowPolicy>& table1Policies();

// Render the table (fixed-width text) for benches and docs.
std::string renderTable1();

}  // namespace aesifc::ifc
