// Design-time verification walkthrough: author a small security-typed
// module the way the paper's Fig. 3 does in ChiselFlow, run the static IFC
// checker, read the label errors, and fix the design. Shows the full
// methodology loop: annotate -> check -> fix -> re-check.
//
// Build & run:  ./build/examples/verify_my_design

#include <cstdio>

#include "hdl/ir.h"
#include "ifc/checker.h"
#include "rtl/verif_models.h"

using namespace aesifc;
using hdl::LabelTerm;
using hdl::Module;
using lattice::Conf;
using lattice::Integ;
using lattice::Label;

namespace {

// A two-user mailbox: each user owns one slot; a `sel` input picks which
// slot the shared data port addresses (the same shape as Fig. 3's cache
// tags, with confidentiality instead of integrity).
Module buildMailbox(bool with_dependent_labels) {
  Module m{"mailbox"};
  const Label pub = Label::publicTrusted();
  const Label alice{Conf::category(1), Integ::top()};
  const Label eve{Conf::category(2), Integ::top()};

  const auto sel = m.input("sel", 1, LabelTerm::of(pub));
  const auto we = m.input("we", 1, LabelTerm::of(pub));
  // The naive design types the shared port with one static label; the right
  // design makes it switch with `sel`.
  const auto port_label = with_dependent_labels
                              ? LabelTerm::dependent(sel, {alice, eve})
                              : LabelTerm::of(pub);
  const auto din = m.input("din", 32, port_label);
  const auto dout = m.output("dout", 32, port_label);

  const auto slot_a = m.reg("slot_alice", 32, LabelTerm::of(alice));
  const auto slot_e = m.reg("slot_eve", 32, LabelTerm::of(eve));

  const auto sel_is_a = m.eq(m.read(sel), m.c(1, 0));
  m.regWrite(slot_a, m.read(din), m.band(m.read(we), sel_is_a));
  m.regWrite(slot_e, m.read(din),
             m.band(m.read(we), m.eq(m.read(sel), m.c(1, 1))));
  m.assign(dout, m.mux(sel_is_a, m.read(slot_a), m.read(slot_e)));
  return m;
}

void report(const char* title, const Module& m) {
  const auto r = ifc::check(m);
  std::printf("--- %s\n%s\n", title, r.toString().c_str());
}

}  // namespace

int main() {
  std::printf("Step 1: a shared mailbox port typed with a single static "
              "label.\nThe checker rejects it — the port would mix two "
              "users' levels:\n\n");
  report("mailbox with static port label", buildMailbox(false));

  std::printf(
      "Step 2: retype the port with a dependent label DL(sel), exactly like "
      "Fig. 3's\ncache tags. Same hardware, now provably isolated:\n\n");
  report("mailbox with dependent port label", buildMailbox(true));

  std::printf(
      "Step 3: the library ships the paper's own verification targets; "
      "re-run them:\n\n");
  report("Fig. 3 cache tags", rtl::buildCacheTags(false));
  report("Fig. 8 meet-gated stall", rtl::buildStallPipeline(true));
  report("Fig. 5 tagged scratchpad", rtl::buildTaggedScratchpad(true));
  return 0;
}
