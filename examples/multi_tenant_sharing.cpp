// The Fig. 2 scenario: multiple cloud tenants (say, SSL endpoints) share one
// AES accelerator. Demonstrates fine-grained sharing — blocks from all
// tenants interleaved in the pipeline at once, each carrying its own tag —
// versus coarse-grained sharing that drains the pipeline between users, and
// shows that the protected design costs no throughput.
//
// Build & run:  ./build/examples/multi_tenant_sharing

#include <cstdio>

#include "soc/service.h"
#include "soc/workload.h"

using namespace aesifc;
using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;

namespace {

soc::WorkloadResult run(SecurityMode mode, bool coarse, unsigned tenants) {
  AcceleratorConfig cfg;
  cfg.mode = mode;
  cfg.coarse_grained = coarse;
  AesAccelerator acc{cfg};
  const auto setup = soc::setupTenants(acc, tenants);
  soc::WorkloadConfig w;
  w.blocks_per_user = 384;
  return soc::runSharedWorkload(acc, setup, w);
}

// Act two: the same accelerator behind the multi-tenant service layer.
// A wedged device trips the circuit breaker into software fallback — but
// the fallback re-checks each tenant's label with the same declassification
// rule the tagged pipeline applies at its exit, so a tenant the hardware
// refuses stays refused in degraded mode.
void serviceDegradedModeDemo() {
  AcceleratorConfig cfg;
  cfg.mode = SecurityMode::Protected;
  cfg.out_buffer_depth = 16;
  AesAccelerator acc{cfg};
  acc.addUser(lattice::Principal::supervisor());

  soc::ServiceConfig scfg;
  scfg.health.window_cycles = 256;
  scfg.health.quarantine_residency_cycles = 512;
  scfg.health.recovery_windows = 1;
  scfg.healthy_opts = {.timeout_cycles = 200, .max_retries = 1,
                       .backoff_cycles = 8};
  soc::AccelService svc{acc, scfg};

  const unsigned alice = acc.addUser(lattice::Principal::user("alice", 1));
  soc::TenantSpec a;
  a.user = alice;
  a.key_slot = 1;
  a.cell_base = 0;
  a.key.assign(16, 0x51);
  a.key_conf = lattice::Conf::category(1);
  const unsigned ta = svc.addTenant(a);

  // Eve's key is provisioned at top confidentiality (the master-key pattern
  // of Section 3.2.2): the pipeline exit suppresses every release to her.
  const unsigned eve = acc.addUser(lattice::Principal::user("eve", 9));
  soc::TenantSpec e;
  e.user = eve;
  e.key_slot = 2;
  e.cell_base = 2;
  e.key.assign(16, 0xE5);
  e.key_conf = lattice::Conf::top();
  const unsigned te = svc.addTenant(e);

  auto block = [](std::uint8_t seed) {
    aes::Block b{};
    for (unsigned i = 0; i < 16; ++i)
      b[i] = static_cast<std::uint8_t>(seed + i);
    return b;
  };
  auto lastVerdict = [&](unsigned tenant) {
    std::string v = "(none)";
    while (auto c = svc.fetch(tenant))
      v = toString(c->status) + " via " + toString(c->served_by);
    return v;
  };

  std::printf("\n--- Act 2: service layer, breaker trip, label-safe "
              "fallback ---\n");
  std::printf("%-22s %-12s %-28s %-28s\n", "scene", "health", "alice",
              "eve (ck=top)");

  // Healthy hardware: alice's block releases, eve's is suppressed at the
  // tagged pipeline's exit.
  svc.submit(ta, block(0x10));
  svc.submit(te, block(0x20));
  svc.runUntilIdle(1u << 14);
  std::printf("%-22s %-12s %-28s %-28s\n", "healthy hardware",
              toString(svc.health()).c_str(), lastVerdict(ta).c_str(),
              lastVerdict(te).c_str());

  // Wedge both receivers: every hardware serve times out until the error
  // budget trips the breaker.
  acc.setReceiverReady(alice, false);
  acc.setReceiverReady(eve, false);
  std::uint8_t seed = 0x30;
  for (unsigned guard = 0;
       svc.health() != soc::HealthState::Quarantined && guard < 600; ++guard) {
    if (svc.queued(ta) < 4) svc.submit(ta, block(seed++));
    svc.pump();
  }
  std::printf("%-22s %-12s %-28s %-28s\n", "wedged device",
              toString(svc.health()).c_str(), lastVerdict(ta).c_str(),
              lastVerdict(te).c_str());

  // Quarantined: the software fallback carries alice's traffic — and
  // refuses eve's with the very same declassification verdict.
  svc.submit(ta, block(0x40));
  svc.submit(te, block(0x41));
  for (unsigned guard = 0; svc.totalQueued() > 0 && guard < 200; ++guard)
    svc.pump();
  std::printf("%-22s %-12s %-28s %-28s\n", "software fallback",
              toString(svc.health()).c_str(), lastVerdict(ta).c_str(),
              lastVerdict(te).c_str());

  // Receivers return; probation canaries re-admit the hardware.
  acc.setReceiverReady(alice, true);
  acc.setReceiverReady(eve, true);
  for (unsigned guard = 0;
       svc.health() != soc::HealthState::Healthy && guard < 2000; ++guard)
    svc.pump();
  svc.submit(ta, block(0x50));
  svc.runUntilIdle(1u << 14);
  std::printf("%-22s %-12s %-28s %-28s\n", "after canary probes",
              toString(svc.health()).c_str(), lastVerdict(ta).c_str(),
              lastVerdict(te).c_str());

  const auto& st = svc.stats();
  std::printf(
      "\nService counters: hw=%llu fallback=%llu fallback-suppressed=%llu\n"
      "canary-rounds=%llu reprovisions=%llu\n"
      "Degraded mode is not a policy downgrade: the fallback refused eve\n"
      "exactly where the tagged pipeline did.\n",
      static_cast<unsigned long long>(st.completed_hw),
      static_cast<unsigned long long>(st.completed_fallback),
      static_cast<unsigned long long>(st.fallback_suppressed),
      static_cast<unsigned long long>(st.canary_rounds),
      static_cast<unsigned long long>(st.key_reprovisions));
}

}  // namespace

int main() {
  std::printf("Four tenants stream AES-128 traffic through one accelerator.\n");
  std::printf("Every result is checked against the software golden model.\n\n");
  std::printf("%-11s %-9s %-11s %-12s %-10s %-10s %-9s\n", "design",
              "sharing", "blocks", "cycles", "blk/cyc", "Gbps@400", "correct");

  struct Row {
    SecurityMode mode;
    bool coarse;
  };
  for (const auto& row : {Row{SecurityMode::Baseline, false},
                          Row{SecurityMode::Protected, false},
                          Row{SecurityMode::Baseline, true},
                          Row{SecurityMode::Protected, true}}) {
    const auto r = run(row.mode, row.coarse, 4);
    std::printf("%-11s %-9s %-11llu %-12llu %-10.3f %-10.1f %-9s\n",
                row.mode == SecurityMode::Baseline ? "baseline" : "protected",
                row.coarse ? "coarse" : "fine",
                static_cast<unsigned long long>(r.blocks_completed),
                static_cast<unsigned long long>(r.cycles), r.blocks_per_cycle,
                r.blocks_per_cycle * 128.0 * 400e6 / 1e9,
                r.all_correct ? "yes" : "NO");
  }

  std::printf(
      "\nTakeaways (matching the paper):\n"
      " * fine-grained sharing keeps the 30-stage pipeline full: ~1\n"
      "   block/cycle = ~51.2 Gbps at the prototype's 400 MHz;\n"
      " * coarse-grained sharing pays a full pipeline drain per user switch;\n"
      " * the protected design's tags and checkers cost no cycles.\n");

  serviceDegradedModeDemo();
  return 0;
}
