// The Fig. 2 scenario: multiple cloud tenants (say, SSL endpoints) share one
// AES accelerator. Demonstrates fine-grained sharing — blocks from all
// tenants interleaved in the pipeline at once, each carrying its own tag —
// versus coarse-grained sharing that drains the pipeline between users, and
// shows that the protected design costs no throughput.
//
// Build & run:  ./build/examples/multi_tenant_sharing

#include <cstdio>

#include "soc/workload.h"

using namespace aesifc;
using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;

namespace {

soc::WorkloadResult run(SecurityMode mode, bool coarse, unsigned tenants) {
  AcceleratorConfig cfg;
  cfg.mode = mode;
  cfg.coarse_grained = coarse;
  AesAccelerator acc{cfg};
  const auto setup = soc::setupTenants(acc, tenants);
  soc::WorkloadConfig w;
  w.blocks_per_user = 384;
  return soc::runSharedWorkload(acc, setup, w);
}

}  // namespace

int main() {
  std::printf("Four tenants stream AES-128 traffic through one accelerator.\n");
  std::printf("Every result is checked against the software golden model.\n\n");
  std::printf("%-11s %-9s %-11s %-12s %-10s %-10s %-9s\n", "design",
              "sharing", "blocks", "cycles", "blk/cyc", "Gbps@400", "correct");

  struct Row {
    SecurityMode mode;
    bool coarse;
  };
  for (const auto& row : {Row{SecurityMode::Baseline, false},
                          Row{SecurityMode::Protected, false},
                          Row{SecurityMode::Baseline, true},
                          Row{SecurityMode::Protected, true}}) {
    const auto r = run(row.mode, row.coarse, 4);
    std::printf("%-11s %-9s %-11llu %-12llu %-10.3f %-10.1f %-9s\n",
                row.mode == SecurityMode::Baseline ? "baseline" : "protected",
                row.coarse ? "coarse" : "fine",
                static_cast<unsigned long long>(r.blocks_completed),
                static_cast<unsigned long long>(r.cycles), r.blocks_per_cycle,
                r.blocks_per_cycle * 128.0 * 400e6 / 1e9,
                r.all_correct ? "yes" : "NO");
  }

  std::printf(
      "\nTakeaways (matching the paper):\n"
      " * fine-grained sharing keeps the 30-stage pipeline full: ~1\n"
      "   block/cycle = ~51.2 Gbps at the prototype's 400 MHz;\n"
      " * coarse-grained sharing pays a full pipeline drain per user switch;\n"
      " * the protected design's tags and checkers cost no cycles.\n");
  return 0;
}
