// The Fig. 2 scenario: multiple cloud tenants (say, SSL endpoints) share one
// AES accelerator. Demonstrates fine-grained sharing — blocks from all
// tenants interleaved in the pipeline at once, each carrying its own tag —
// versus coarse-grained sharing that drains the pipeline between users, and
// shows that the protected design costs no throughput.
//
// Build & run:  ./build/examples/multi_tenant_sharing

#include <algorithm>
#include <cstdio>
#include <vector>

#include "soc/pool.h"
#include "soc/service.h"
#include "soc/supervisor.h"
#include "soc/workload.h"

using namespace aesifc;
using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;

namespace {

soc::WorkloadResult run(SecurityMode mode, bool coarse, unsigned tenants) {
  AcceleratorConfig cfg;
  cfg.mode = mode;
  cfg.coarse_grained = coarse;
  AesAccelerator acc{cfg};
  const auto setup = soc::setupTenants(acc, tenants);
  soc::WorkloadConfig w;
  w.blocks_per_user = 384;
  return soc::runSharedWorkload(acc, setup, w);
}

// Act two: the same accelerator behind the multi-tenant service layer.
// A wedged device trips the circuit breaker into software fallback — but
// the fallback re-checks each tenant's label with the same declassification
// rule the tagged pipeline applies at its exit, so a tenant the hardware
// refuses stays refused in degraded mode.
void serviceDegradedModeDemo() {
  AcceleratorConfig cfg;
  cfg.mode = SecurityMode::Protected;
  cfg.out_buffer_depth = 16;
  AesAccelerator acc{cfg};
  acc.addUser(lattice::Principal::supervisor());

  soc::ServiceConfig scfg;
  scfg.health.window_cycles = 256;
  scfg.health.quarantine_residency_cycles = 512;
  scfg.health.recovery_windows = 1;
  scfg.healthy_opts = {.timeout_cycles = 200, .max_retries = 1,
                       .backoff_cycles = 8};
  soc::AccelService svc{acc, scfg};

  const unsigned alice = acc.addUser(lattice::Principal::user("alice", 1));
  soc::TenantSpec a;
  a.user = alice;
  a.key_slot = 1;
  a.cell_base = 0;
  a.key.assign(16, 0x51);
  a.key_conf = lattice::Conf::category(1);
  const unsigned ta = svc.addTenant(a);

  // Eve's key is provisioned at top confidentiality (the master-key pattern
  // of Section 3.2.2): the pipeline exit suppresses every release to her.
  const unsigned eve = acc.addUser(lattice::Principal::user("eve", 9));
  soc::TenantSpec e;
  e.user = eve;
  e.key_slot = 2;
  e.cell_base = 2;
  e.key.assign(16, 0xE5);
  e.key_conf = lattice::Conf::top();
  const unsigned te = svc.addTenant(e);

  auto block = [](std::uint8_t seed) {
    aes::Block b{};
    for (unsigned i = 0; i < 16; ++i)
      b[i] = static_cast<std::uint8_t>(seed + i);
    return b;
  };
  auto lastVerdict = [&](unsigned tenant) {
    std::string v = "(none)";
    while (auto c = svc.fetch(tenant))
      v = toString(c->status) + " via " + toString(c->served_by);
    return v;
  };

  std::printf("\n--- Act 2: service layer, breaker trip, label-safe "
              "fallback ---\n");
  std::printf("%-22s %-12s %-28s %-28s\n", "scene", "health", "alice",
              "eve (ck=top)");

  // Healthy hardware: alice's block releases, eve's is suppressed at the
  // tagged pipeline's exit.
  svc.submit(ta, block(0x10));
  svc.submit(te, block(0x20));
  svc.runUntilIdle(1u << 14);
  std::printf("%-22s %-12s %-28s %-28s\n", "healthy hardware",
              toString(svc.health()).c_str(), lastVerdict(ta).c_str(),
              lastVerdict(te).c_str());

  // Wedge both receivers: every hardware serve times out until the error
  // budget trips the breaker.
  acc.setReceiverReady(alice, false);
  acc.setReceiverReady(eve, false);
  std::uint8_t seed = 0x30;
  for (unsigned guard = 0;
       svc.health() != soc::HealthState::Quarantined && guard < 600; ++guard) {
    if (svc.queued(ta) < 4) svc.submit(ta, block(seed++));
    svc.pump();
  }
  std::printf("%-22s %-12s %-28s %-28s\n", "wedged device",
              toString(svc.health()).c_str(), lastVerdict(ta).c_str(),
              lastVerdict(te).c_str());

  // Quarantined: the software fallback carries alice's traffic — and
  // refuses eve's with the very same declassification verdict.
  svc.submit(ta, block(0x40));
  svc.submit(te, block(0x41));
  for (unsigned guard = 0; svc.totalQueued() > 0 && guard < 200; ++guard)
    svc.pump();
  std::printf("%-22s %-12s %-28s %-28s\n", "software fallback",
              toString(svc.health()).c_str(), lastVerdict(ta).c_str(),
              lastVerdict(te).c_str());

  // Receivers return; probation canaries re-admit the hardware.
  acc.setReceiverReady(alice, true);
  acc.setReceiverReady(eve, true);
  for (unsigned guard = 0;
       svc.health() != soc::HealthState::Healthy && guard < 2000; ++guard)
    svc.pump();
  svc.submit(ta, block(0x50));
  svc.runUntilIdle(1u << 14);
  std::printf("%-22s %-12s %-28s %-28s\n", "after canary probes",
              toString(svc.health()).c_str(), lastVerdict(ta).c_str(),
              lastVerdict(te).c_str());

  const auto& st = svc.stats();
  std::printf(
      "\nService counters: hw=%llu fallback=%llu fallback-suppressed=%llu\n"
      "canary-rounds=%llu reprovisions=%llu\n"
      "Degraded mode is not a policy downgrade: the fallback refused eve\n"
      "exactly where the tagged pipeline did.\n",
      static_cast<unsigned long long>(st.completed_hw),
      static_cast<unsigned long long>(st.completed_fallback),
      static_cast<unsigned long long>(st.fallback_suppressed),
      static_cast<unsigned long long>(st.canary_rounds),
      static_cast<unsigned long long>(st.key_reprovisions));
}

// Act three: an elastic three-shard pool loses a shard mid-traffic. The
// supervisor evacuates its tenants — each move the full audited handshake
// (key re-provisioned at the target BEFORE the source slot is zeroized) —
// and traffic keeps flowing. The merged security-event timeline from both
// involved shards' rings narrates the incident end to end.
void elasticPoolQuarantineDemo() {
  soc::PoolConfig pcfg;
  pcfg.shards = 3;
  pcfg.service.batch_size = 4;
  pcfg.service.quota_per_round = 8;
  pcfg.service.health.quarantine_residency_cycles = 1u << 20;
  soc::EnginePool pool{pcfg};
  soc::PoolSupervisor sup{pool, soc::SupervisorConfig{}};

  std::vector<unsigned> ids;
  for (unsigned t = 0; t < 6; ++t) {
    soc::PoolTenantSpec spec;
    spec.name = "endpoint-" + std::to_string(t);
    spec.category = t + 1;
    spec.key.assign(16, static_cast<std::uint8_t>(0x60 + t));
    const auto placed = pool.addTenant(spec);
    if (!placed.placed) return;
    ids.push_back(placed.tenant);
  }

  auto burst = [&](unsigned blocks) {
    for (unsigned i = 0; i < blocks; ++i) {
      for (unsigned id : ids) {
        aes::Block b{};
        for (unsigned j = 0; j < 16; ++j)
          b[j] = static_cast<std::uint8_t>(id + i + j);
        (void)pool.submit(id, b);
      }
    }
    for (unsigned p = 0; p < 8; ++p) pool.pump();
  };

  std::printf("\n--- Act 3: elastic pool, shard quarantine, audited "
              "evacuation ---\n");
  const unsigned sick = pool.shardOf(ids[0]);
  std::printf("6 tenants on 3 share-nothing shards; shard %u hosts %zu of "
              "them.\n", sick, pool.tenantsOnShard(sick).size());

  burst(8);  // healthy traffic, queues warm
  std::printf("shard %u suffers an incident mid-traffic -> forced "
              "quarantine\n", sick);
  pool.shardService(sick).forceQuarantine("ecc storm on key RAM");
  const auto rep = sup.poll();  // supervisor evacuates
  burst(8);                     // traffic continues through the move
  pool.runUntilIdle(1u << 18);

  std::printf("supervisor evacuated %u tenant(s); shard %u now hosts %zu; "
              "wrong_key_uses=%llu\n",
              rep.evacuated, sick, pool.tenantsOnShard(sick).size(),
              static_cast<unsigned long long>(
                  pool.aggregateStats().wrong_key_uses));

  // Merge every shard's event ring into one audit trail. Cycle stamps are
  // shard-local (share-nothing shards run independent clocks), so order by
  // shard then cycle: each ring reads chronologically, and every migration
  // shows its Begun -> KeyZeroized -> Committed triple in BOTH rings.
  struct Line {
    unsigned shard;
    std::uint64_t cycle;
    std::string text;
  };
  std::vector<Line> timeline;
  for (unsigned s = 0; s < pool.shards(); ++s) {
    for (const auto& e : pool.shardEngine(s).events()) {
      if (e.kind == accel::SecurityEventKind::MigrationBegun ||
          e.kind == accel::SecurityEventKind::MigrationKeyZeroized ||
          e.kind == accel::SecurityEventKind::MigrationCommitted ||
          e.kind == accel::SecurityEventKind::ServiceHealth) {
        timeline.push_back({s, e.cycle, toString(e.kind) + ": " + e.detail});
      }
    }
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const Line& a, const Line& b) {
                     return a.shard != b.shard ? a.shard < b.shard
                                               : a.cycle < b.cycle;
                   });
  std::printf("\nmerged audit trail (cycles are shard-local):\n");
  for (const auto& l : timeline) {
    std::printf("  [shard %u @ cycle %6llu] %s\n", l.shard,
                static_cast<unsigned long long>(l.cycle), l.text.c_str());
  }
  std::printf(
      "\nThe key never had a keyless (or double-keyed) window: each tenant's\n"
      "key was live at the target before the source slot was zeroized, and\n"
      "the paired events above put the proof in both shards' rings.\n");
}

}  // namespace

int main() {
  std::printf("Four tenants stream AES-128 traffic through one accelerator.\n");
  std::printf("Every result is checked against the software golden model.\n\n");
  std::printf("%-11s %-9s %-11s %-12s %-10s %-10s %-9s\n", "design",
              "sharing", "blocks", "cycles", "blk/cyc", "Gbps@400", "correct");

  struct Row {
    SecurityMode mode;
    bool coarse;
  };
  for (const auto& row : {Row{SecurityMode::Baseline, false},
                          Row{SecurityMode::Protected, false},
                          Row{SecurityMode::Baseline, true},
                          Row{SecurityMode::Protected, true}}) {
    const auto r = run(row.mode, row.coarse, 4);
    std::printf("%-11s %-9s %-11llu %-12llu %-10.3f %-10.1f %-9s\n",
                row.mode == SecurityMode::Baseline ? "baseline" : "protected",
                row.coarse ? "coarse" : "fine",
                static_cast<unsigned long long>(r.blocks_completed),
                static_cast<unsigned long long>(r.cycles), r.blocks_per_cycle,
                r.blocks_per_cycle * 128.0 * 400e6 / 1e9,
                r.all_correct ? "yes" : "NO");
  }

  std::printf(
      "\nTakeaways (matching the paper):\n"
      " * fine-grained sharing keeps the 30-stage pipeline full: ~1\n"
      "   block/cycle = ~51.2 Gbps at the prototype's 400 MHz;\n"
      " * coarse-grained sharing pays a full pipeline drain per user switch;\n"
      " * the protected design's tags and checkers cost no cycles.\n");

  serviceDegradedModeDemo();
  elasticPoolQuarantineDemo();
  return 0;
}
