// Runtime enforcement demo: the paper's related work (GLIFT, RTLIFT) tracks
// information flows with dedicated logic instead of static types. This
// example runs the dynamic tracker over the Fig. 8 stall pipeline, shows a
// leak being caught at runtime, and compares the precise (RTLIFT-style) and
// conservative (GLIFT-style) propagation modes.
//
// Build & run:  ./build/examples/runtime_tracking

#include <cstdio>

#include "ifc/tracker.h"
#include "rtl/verif_models.h"

using namespace aesifc;
using ifc::DynamicTracker;
using ifc::TrackPrecision;
using lattice::Conf;
using lattice::Integ;
using lattice::Label;

namespace {

Label level(unsigned k) { return Label{Conf::level(k), Integ::top()}; }

void drive(DynamicTracker& t, unsigned in_tag, unsigned data, Label l) {
  t.poke("in_tag", BitVec(2, in_tag), Label::publicTrusted());
  t.poke("in_data", BitVec(8, data), l);
  t.poke("req_tag", BitVec(2, 0), Label::publicTrusted());
  t.poke("stall_req", BitVec(1, 0), Label::publicTrusted());
  t.step();
}

}  // namespace

int main() {
  auto gated = rtl::buildStallPipeline(true);

  std::printf("Dynamic tag tracking over the meet-gated stall pipeline.\n\n");

  {
    DynamicTracker t{gated, TrackPrecision::Precise};
    // A level-1 block flows through while the tag says level 1: no events.
    drive(t, 1, 0xaa, level(1));
    drive(t, 1, 0xbb, level(1));
    drive(t, 0, 0x00, level(0));
    std::printf("well-tagged traffic:   %zu runtime events (expect 0)\n",
                t.events().size());
  }

  {
    DynamicTracker t{gated, TrackPrecision::Precise};
    // Mis-tagged traffic: level-2 data enters while the tag claims level 1.
    // The output annotation DL(s2_tag) catches the mismatch when the block
    // reaches the output.
    drive(t, 1, 0x77, level(2));
    drive(t, 1, 0x00, level(1));
    drive(t, 1, 0x00, level(1));
    std::printf("mis-tagged traffic:    %zu runtime event(s) (expect >0)\n",
                t.events().size());
    for (const auto& e : t.events()) {
      std::printf("    %s\n", e.toString().c_str());
    }
  }

  std::printf("\nPrecision comparison on a mux whose public branch is "
              "selected:\n");
  {
    hdl::Module m{"muxdemo"};
    const auto c = m.input("c", 1, hdl::LabelTerm::of(Label::publicTrusted()));
    const auto s = m.input("s", 8, hdl::LabelTerm::of(Label::topTop()));
    const auto p = m.input("p", 8, hdl::LabelTerm::of(Label::publicTrusted()));
    const auto o = m.output("o", 8, hdl::LabelTerm::unconstrained());
    m.assign(o, m.mux(m.read(c), m.read(s), m.read(p)));

    for (const auto prec :
         {TrackPrecision::Precise, TrackPrecision::Conservative}) {
      DynamicTracker t{m, prec};
      t.poke("c", BitVec(1, 0), Label::publicTrusted());
      t.poke("s", BitVec(8, 0x42), Label::topTop());
      t.poke("p", BitVec(8, 0x01), Label::publicTrusted());
      t.evalComb();
      std::printf("  %-14s output label = %s\n",
                  prec == TrackPrecision::Precise ? "RTLIFT-style:"
                                                  : "GLIFT-style:",
                  t.label("o").toString().c_str());
    }
    std::printf("  (precise tracking keeps the untaken secret branch out of "
                "the label)\n");
  }
  return 0;
}
