// Descriptor-ring DMA walkthrough: program a scatter-gather chain the way
// a kernel driver programs a cesa/marvell-style ring — write descriptors
// into tagged host memory, hand them to the device with an ownership bit,
// ring the doorbell, and harvest completion records — then sabotage the
// ring mid-flight (a torn ownership handoff and a stalled receiver) and
// watch the engine refuse, fire its watchdog, and recover, narrating from
// the accelerator's security event ring.
//
// Build & run:  ./build/examples/dma_ring

#include <cstdio>

#include "accel/accelerator.h"
#include "accel/driver.h"
#include "aes/modes.h"
#include "common/rng.h"
#include "soc/dma.h"

using namespace aesifc;
using namespace aesifc::soc;
using accel::AesAccelerator;

namespace {

std::size_t shown = 0;

void drainEvents(const AesAccelerator& acc) {
  const auto& ev = acc.events();
  for (; shown < ev.size(); ++shown) {
    std::printf("    event ring: %s\n", ev[shown].toString().c_str());
  }
}

}  // namespace

int main() {
  accel::AcceleratorConfig cfg;
  cfg.mode = accel::SecurityMode::Protected;
  AesAccelerator acc{cfg};
  const unsigned alice = acc.addUser(lattice::Principal::user("alice", 1));

  Rng rng{0x00d};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  accel::loadKey128(acc, alice, 1, 0, key, acc.principal(alice).authority.c);

  std::printf("Step 1: lay out rings and buffers in tagged host memory\n");
  HostMemory mem{64 * 1024};
  mem.setPageLabel(0, 0x3000, acc.principal(alice).authority);
  std::printf(
      "  descriptor ring  8 x %u B @ 0x0000   (label: alice)\n"
      "  chain arena     16 x %u B @ 0x0400\n"
      "  completion ring  8 x %u B @ 0x0800\n"
      "  src buffer               @ 0x1000, dst @ 0x2000\n",
      kDescBytes, kDescBytes, kCompBytes);

  DmaRingEngine eng{acc, mem, /*hardened=*/true};
  DmaRingConfig rc;
  rc.desc_base = 0x0000;
  rc.desc_slots = 8;
  rc.chain_base = 0x400;
  rc.chain_slots = 16;
  rc.comp_base = 0x800;
  rc.comp_slots = 8;
  rc.watchdog_cycles = 256;
  const unsigned ch = eng.addChannel(rc);
  DmaRingDriver drv{eng, mem, ch, rc};

  std::printf("\nStep 2: publish a 3-segment scatter-gather chain\n");
  std::vector<std::uint8_t> msg(480);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  mem.writeBytes(0x1000, msg);
  DmaDescriptor seg;
  seg.user = alice;
  seg.key_slot = 1;
  seg.mode = DmaMode::EcbEncrypt;
  std::vector<DmaDescriptor> chain;
  for (unsigned s = 0; s < 3; ++s) {
    DmaDescriptor d = seg;
    d.src = 0x1000 + s * 160;
    d.dst = 0x2000 + s * 160;
    d.len = 160;
    chain.push_back(d);
  }
  const auto seq1 = drv.submitChain(chain);
  std::printf(
      "  head descriptor at slot 0 (OWNED set last: the release store),\n"
      "  continuations in the chain arena, doorbell rung -> seq %u\n", *seq1);
  const auto* c1 = drv.wait(*seq1, 8192);
  std::printf("  completion: status=%s blocks=%llu exec_cycles=%u\n",
              toString(c1->status).c_str(),
              static_cast<unsigned long long>(c1->blocks), c1->exec_cycles);
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  std::printf("  dst == software ECB? %s\n",
              mem.readBytes(0x2000, msg.size()) == aes::ecbEncrypt(msg, ek)
                  ? "yes"
                  : "NO");

  std::printf(
      "\nStep 3: torn ownership — reclaim the descriptor mid-execution\n");
  const auto seq2 = drv.submitChain(
      {[&] { DmaDescriptor d = seg; d.src = 0x1000; d.dst = 0x2800;
             d.len = 480; return d; }()});
  // This transfer sits in ring slot 1 (the ring advanced past Step 2's).
  const std::size_t live_desc = rc.desc_base + eng.headSlot(ch) * kDescBytes;
  for (unsigned i = 0; i < 4; ++i) eng.tick();  // engine latched the head
  std::printf("  host clears OWNED while %u blocks are in flight...\n", 30u);
  mem.write32(live_desc,
              static_cast<std::uint32_t>(eng.generation(ch)) << 16);
  const auto* c2 = drv.wait(*seq2, 8192);
  std::printf("  completion: status=%s (fail-secure: dst untouched)\n",
              toString(c2->status).c_str());
  drainEvents(acc);

  std::printf(
      "\nStep 4: stalled ring — the output receiver wedges, the watchdog\n"
      "fires, the engine quiesces, resyncs, and resubmits idempotently\n");
  acc.setReceiverReady(alice, false);
  const auto seq3 = drv.submitChain(
      {[&] { DmaDescriptor d = seg; d.src = 0x1000; d.dst = 0x2800;
             d.len = 480; return d; }()});
  for (unsigned i = 0; i < 2 * rc.watchdog_cycles + 64; ++i) eng.tick();
  std::printf("  ...%llu watchdog fires while the receiver is wedged\n",
              static_cast<unsigned long long>(eng.stats().watchdog_fires));
  acc.setReceiverReady(alice, true);
  const auto* c3 = drv.wait(*seq3, 1u << 16);
  std::printf(
      "  receiver released: status=%s blocks=%llu, recoveries=%llu,\n"
      "  completions delivered exactly once (duplicates: %llu)\n",
      toString(c3->status).c_str(),
      static_cast<unsigned long long>(c3->blocks),
      static_cast<unsigned long long>(eng.stats().recoveries),
      static_cast<unsigned long long>(drv.duplicateCompletions()));
  drainEvents(acc);

  const auto& st = eng.stats();
  std::printf(
      "\nRing lifetime counters: %llu descriptors fetched, %llu ok,\n"
      "%llu refused, %llu torn-ownership, %llu watchdog fires, %llu\n"
      "recoveries, cross-label writes: %llu (the hardened engine keeps\n"
      "this 0 by construction: labels are re-checked at the point of use\n"
      "against latched addresses, never against re-read ring memory)\n",
      static_cast<unsigned long long>(st.descriptors_fetched),
      static_cast<unsigned long long>(st.completed_ok),
      static_cast<unsigned long long>(st.refused),
      static_cast<unsigned long long>(st.torn_ownership),
      static_cast<unsigned long long>(st.watchdog_fires),
      static_cast<unsigned long long>(st.recoveries),
      static_cast<unsigned long long>(st.cross_label_writes));
  return 0;
}
