// The workload the paper's introduction motivates: multiple cloud tenants
// terminating TLS on one SoC, sharing a single AES engine for record
// encryption. Each tenant's records are sealed with AES-GCM; every AES
// block operation (the GHASH key H, the counter keystream, and the tag
// mask) runs on the shared, IFC-protected accelerator, while the GF(2^128)
// GHASH arithmetic stays on the host. Results are verified against the
// pure-software GCM.
//
// Build & run:  ./build/examples/tls_gateway

#include <cstdio>
#include <cstring>
#include <string>

#include "accel/driver.h"
#include "aes/gcm.h"
#include "common/rng.h"

using namespace aesifc;
using accel::AccelSession;
using accel::AesAccelerator;

namespace {

aes::Block j0FromIv(const std::array<std::uint8_t, 12>& iv) {
  aes::Block j0{};
  std::memcpy(j0.data(), iv.data(), 12);
  j0[15] = 1;
  return j0;
}

void inc32(aes::Block& ctr) {
  for (int i = 15; i >= 12; --i) {
    if (++ctr[static_cast<unsigned>(i)] != 0) break;
  }
}

// AES-GCM with the block cipher offloaded to the accelerator session.
std::optional<aes::GcmResult> acceleratedGcmEncrypt(
    AccelSession& session, const std::vector<std::uint8_t>& pt,
    const std::vector<std::uint8_t>& aad,
    const std::array<std::uint8_t, 12>& iv) {
  // One pipelined batch: [0^128 (for H), J0 (for the tag mask),
  // inc32(J0).. (keystream counters)].
  const aes::Block j0 = j0FromIv(iv);
  const std::size_t nblocks = (pt.size() + 15) / 16;
  aes::Bytes batch;
  batch.resize(16 * (2 + nblocks));
  std::memcpy(batch.data() + 16, j0.data(), 16);
  aes::Block ctr = j0;
  for (std::size_t i = 0; i < nblocks; ++i) {
    inc32(ctr);
    std::memcpy(batch.data() + 32 + 16 * i, ctr.data(), 16);
  }

  const auto enc = session.ecbEncrypt(batch);
  if (!enc) return std::nullopt;

  aes::Tag128 h{};
  std::memcpy(h.data(), enc->data(), 16);

  aes::GcmResult r;
  r.ciphertext.resize(pt.size());
  for (std::size_t i = 0; i < pt.size(); ++i) {
    r.ciphertext[i] = pt[i] ^ (*enc)[32 + i];
  }

  // GHASH on the host over AAD || C || lengths.
  std::vector<std::uint8_t> s;
  auto pad = [&](const std::vector<std::uint8_t>& d) {
    s.insert(s.end(), d.begin(), d.end());
    if (d.size() % 16 != 0) s.insert(s.end(), 16 - d.size() % 16, 0);
  };
  pad(aad);
  pad(r.ciphertext);
  auto len64 = [&](std::uint64_t bytes) {
    for (int i = 7; i >= 0; --i)
      s.push_back(static_cast<std::uint8_t>((bytes * 8) >> (8 * i)));
  };
  len64(aad.size());
  len64(r.ciphertext.size());
  const aes::Tag128 hash = aes::ghash(h, s);
  for (unsigned i = 0; i < 16; ++i) r.tag[i] = hash[i] ^ (*enc)[16 + i];
  return r;
}

}  // namespace

int main() {
  accel::AcceleratorConfig cfg;
  AesAccelerator acc{cfg};
  const unsigned sup = acc.addUser(lattice::Principal::supervisor());
  (void)sup;

  Rng rng{2026};
  struct Tenant {
    std::string name;
    unsigned user;
    unsigned slot;
    std::vector<std::uint8_t> key;
  };
  std::vector<Tenant> tenants;
  const char* names[] = {"shop.example", "bank.example", "mail.example"};
  for (unsigned t = 0; t < 3; ++t) {
    Tenant ten;
    ten.name = names[t];
    ten.user = acc.addUser(lattice::Principal::user(ten.name, t + 1));
    ten.slot = t + 1;
    ten.key.resize(16);
    for (auto& b : ten.key) b = static_cast<std::uint8_t>(rng.next());
    if (!accel::loadKey128(acc, ten.user, ten.slot, 2 * t, ten.key,
                           lattice::Conf::category(t + 1))) {
      std::printf("key provisioning failed for %s\n", ten.name.c_str());
      return 1;
    }
    tenants.push_back(std::move(ten));
  }

  std::printf("TLS gateway: 3 tenants sealing records with AES-GCM on one\n"
              "shared, IFC-protected accelerator.\n\n");
  std::printf("%-14s %-8s %-9s %-12s %-10s %-8s\n", "tenant", "records",
              "bytes", "dev cycles", "cyc/rec", "verified");

  bool all_ok = true;
  for (auto& ten : tenants) {
    AccelSession session{acc, ten.user, ten.slot};
    const auto ek = aes::expandKey(ten.key, aes::KeySize::Aes128);

    const unsigned records = 16;
    std::size_t bytes = 0;
    bool ok = true;
    for (unsigned rec = 0; rec < records; ++rec) {
      std::vector<std::uint8_t> payload(64 + rng.below(400));
      for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
      std::vector<std::uint8_t> aad = {0x17, 0x03, 0x03,
                                       static_cast<std::uint8_t>(rec)};
      std::array<std::uint8_t, 12> iv{};
      for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());
      bytes += payload.size();

      const auto hw = acceleratedGcmEncrypt(session, payload, aad, iv);
      if (!hw) {
        ok = false;
        break;
      }
      // Cross-check against pure-software GCM, then authenticate + decrypt.
      const auto sw = aes::gcmEncrypt(payload, aad, ek, iv);
      const auto back = aes::gcmDecrypt(hw->ciphertext, aad, hw->tag, ek, iv);
      ok = ok && hw->ciphertext == sw.ciphertext && hw->tag == sw.tag &&
           back.has_value() && *back == payload;
    }
    all_ok = all_ok && ok;
    std::printf("%-14s %-8u %-9zu %-12llu %-10.1f %-8s\n", ten.name.c_str(),
                records, bytes,
                static_cast<unsigned long long>(session.cyclesUsed()),
                static_cast<double>(session.cyclesUsed()) / records,
                ok ? "yes" : "NO");
  }

  std::printf("\nsecurity events: %zu (expected 0 for legitimate traffic)\n",
              acc.events().size());
  return all_ok ? 0 : 1;
}
