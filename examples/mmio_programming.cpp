// Register-level programming walkthrough: what a kernel driver does on the
// Fig. 4 AXI interface, step by step — allocate cells, stage and install a
// key, submit a block, poll STATUS, read the result, and watch the
// protection respond to a hostile window.
//
// Build & run:  ./build/examples/mmio_programming

#include <cstdio>

#include "accel/mmio.h"
#include "aes/cipher.h"

using namespace aesifc;
using accel::AesAccelerator;
using W = accel::MmioWindow;

namespace {

void show(const char* step, std::uint32_t value) {
  std::printf("  %-46s -> 0x%08x\n", step, value);
}

}  // namespace

int main() {
  accel::AcceleratorConfig cfg;
  AesAccelerator acc{cfg};
  const unsigned sup = acc.addUser(lattice::Principal::supervisor());
  const unsigned alice = acc.addUser(lattice::Principal::user("alice", 1));
  const unsigned eve = acc.addUser(lattice::Principal::user("eve", 2));
  W sup_win{acc, sup};
  W alice_win{acc, alice};
  W eve_win{acc, eve};

  std::printf("Step 1: identify the device through any window\n");
  show("read CFG_VERSION", alice_win.read(W::kCfgBase + 0xc));

  std::printf("\nStep 2: Alice provisions a key through her window\n");
  alice_win.write(W::kKeyArg, (2u << 8) | 0);  // 2 cells at base 0
  alice_win.write(W::kKeyGo, 2);               // configure
  const std::uint8_t key[16] = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2,
                                0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
                                0x4f, 0x3c};
  for (unsigned c = 0; c < 2; ++c) {
    std::uint32_t lo = 0, hi = 0;
    for (unsigned i = 0; i < 4; ++i) {
      lo |= static_cast<std::uint32_t>(key[8 * c + i]) << (8 * i);
      hi |= static_cast<std::uint32_t>(key[8 * c + 4 + i]) << (8 * i);
    }
    alice_win.write(W::kKeyArg, c);
    alice_win.write(W::kKeyLo, lo);
    alice_win.write(W::kKeyHi, hi);
    alice_win.write(W::kKeyGo, 1);  // store staged words into cell c
  }
  alice_win.write(W::kKeySlot, 1);
  alice_win.write(W::kKeyArg, (1u << 8) | 0);  // palette 1 = category 1
  alice_win.write(W::kKeyGo, 4);               // expand into slot 1
  show("KEY_GO expand, LAST_OP_OK", alice_win.read(W::kLastOpOk));

  std::printf("\nStep 3: Eve's window tries to poke Alice's cells\n");
  eve_win.write(W::kKeyArg, 0);
  eve_win.write(W::kKeyLo, 0xdeadbeef);
  eve_win.write(W::kKeyGo, 1);
  show("Eve KEY_GO write, LAST_OP_OK (0 = refused)",
       eve_win.read(W::kLastOpOk));

  std::printf("\nStep 4: Alice encrypts one block\n");
  aes::Block pt{};
  for (unsigned i = 0; i < 16; ++i) pt[i] = static_cast<std::uint8_t>(i);
  for (unsigned w = 0; w < 4; ++w) {
    std::uint32_t v = 0;
    for (unsigned i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(pt[4 * w + i]) << (8 * i);
    alice_win.write(W::kDataIn + 4 * w, v);
  }
  alice_win.write(W::kCtrl, 1);  // submit-encrypt
  unsigned polls = 0;
  while ((alice_win.read(W::kStatus) & 1u) == 0) {
    acc.tick();
    ++polls;
  }
  std::printf("  polled STATUS %u times (30-stage pipeline)\n", polls);

  aes::Block ct{};
  for (unsigned w = 0; w < 4; ++w) {
    const std::uint32_t v = alice_win.read(W::kDataOut + 4 * w);
    for (unsigned i = 0; i < 4; ++i)
      ct[4 * w + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  alice_win.write(W::kCtrl, 4);  // pop

  const auto golden = aes::encryptBlock(pt, key, aes::KeySize::Aes128);
  std::printf("  ciphertext: ");
  for (unsigned i = 0; i < 16; ++i) std::printf("%02x", ct[i]);
  std::printf("\n  matches software AES: %s\n",
              ct == golden ? "yes" : "NO");

  std::printf("\nStep 5: config window integrity\n");
  eve_win.write(W::kCfgBase + 0x0, 1);  // debug_enable tamper
  show("Eve CFG write, LAST_OP_OK", eve_win.read(W::kLastOpOk));
  sup_win.write(W::kCfgBase + 0x0, 1);
  show("supervisor CFG write, LAST_OP_OK", sup_win.read(W::kLastOpOk));

  std::printf("\nsecurity events logged by the device: %zu\n",
              acc.events().size());
  for (const auto& e : acc.events()) {
    std::printf("  %s\n", e.toString().c_str());
  }
  return ct == golden ? 0 : 1;
}
