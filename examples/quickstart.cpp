// Quickstart: bring up the protected AES accelerator, register a user,
// load a key through the tagged scratchpad, and encrypt a message —
// verifying the hardware results against the software golden model.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <cstring>
#include <string>

#include "accel/accelerator.h"
#include "aes/cipher.h"
#include "aes/modes.h"

using namespace aesifc;
using accel::AesAccelerator;

int main() {
  // 1. The accelerator: protected mode, AES-128 (30-stage pipeline).
  accel::AcceleratorConfig cfg;
  cfg.mode = accel::SecurityMode::Protected;
  AesAccelerator acc{cfg};

  // 2. Principals: a supervisor and one user with its own security category.
  const unsigned sup = acc.addUser(lattice::Principal::supervisor());
  const unsigned alice = acc.addUser(lattice::Principal::user("alice", 1));
  (void)sup;

  // 3. Load Alice's key: the arbiter tags two scratchpad cells for her, she
  //    stores the key halves, and the key is expanded into round-key RAM.
  const std::vector<std::uint8_t> key = {0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae,
                                         0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88,
                                         0x09, 0xcf, 0x4f, 0x3c};
  acc.configureKeyCells(alice, 0, 2);
  for (unsigned c = 0; c < 2; ++c) {
    std::uint64_t w = 0;
    for (unsigned b = 0; b < 8; ++b)
      w |= static_cast<std::uint64_t>(key[8 * c + b]) << (8 * b);
    if (!acc.writeKeyCell(alice, c, w)) {
      std::printf("key cell write refused?!\n");
      return 1;
    }
  }
  if (!acc.loadKey(alice, /*slot=*/1, /*cell_base=*/0, aes::KeySize::Aes128,
                   lattice::Conf::category(1))) {
    std::printf("key load refused?!\n");
    return 1;
  }

  // 4. Encrypt a message block by block through the pipeline.
  const std::string message = "Fine-grained sharing with formally verified "
                              "information flow control!";
  auto padded = aes::pkcs7Pad(
      aes::Bytes(message.begin(), message.end()));

  std::vector<aes::Block> results(padded.size() / 16);
  std::uint64_t req_id = 1;
  for (std::size_t off = 0; off < padded.size(); off += 16) {
    accel::BlockRequest req;
    req.req_id = req_id++;
    req.user = alice;
    req.key_slot = 1;
    std::memcpy(req.data.data(), padded.data() + off, 16);
    acc.submit(req);
  }
  std::size_t done = 0;
  while (done < results.size()) {
    acc.tick();
    while (auto out = acc.fetchOutput(alice)) {
      results[out->req_id - 1] = out->data;
      ++done;
    }
  }

  // 5. Verify against the golden software model.
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  const auto golden = aes::ecbEncrypt(padded, ek);
  bool ok = true;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (std::memcmp(results[i].data(), golden.data() + 16 * i, 16) != 0)
      ok = false;
  }

  std::printf("message blocks encrypted : %zu\n", results.size());
  std::printf("cycles elapsed           : %llu\n",
              static_cast<unsigned long long>(acc.cycle()));
  std::printf("matches software AES     : %s\n", ok ? "yes" : "NO");
  std::printf("security events          : %zu (expected 0 for legit use)\n",
              acc.events().size());
  std::printf("first ciphertext block   : ");
  for (unsigned i = 0; i < 16; ++i) std::printf("%02x", results[0][i]);
  std::printf("\n");
  return ok ? 0 : 1;
}
