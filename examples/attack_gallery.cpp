// Runs every attack from the paper against both accelerator builds and
// narrates the outcomes: the stall covert channel (Fig. 8), the scratchpad
// buffer overflow (Fig. 5), debug-port key theft, master-key misuse
// (Section 3.2.2), and configuration tampering (Section 3.2.4).
//
// Build & run:  ./build/examples/attack_gallery

#include <cstdio>

#include "soc/attacks.h"

using namespace aesifc;
using accel::SecurityMode;

namespace {

void banner(const char* s) {
  std::printf("\n=== %s "
              "=====================================================\n",
              s);
}

}  // namespace

int main() {
  banner("1. Covert timing channel through pipeline stalls (Fig. 8)");
  for (const auto mode : {SecurityMode::Baseline, SecurityMode::Protected}) {
    const auto r = soc::runTimingChannelAttack(mode);
    std::printf(
        "  %-10s Eve decodes Alice's secret with %.0f%% accuracy "
        "(%.3f bits of mutual information per window)\n",
        mode == SecurityMode::Baseline ? "baseline:" : "protected:",
        100.0 * r.accuracy, r.mi_bits);
  }
  std::printf("  The protected design denies cross-level stalls and parks\n"
              "  Alice's outputs in the overflow buffer instead.\n");

  banner("2. Key scratchpad buffer overflow (Fig. 5)");
  for (const auto mode : {SecurityMode::Baseline, SecurityMode::Protected}) {
    const auto r = soc::runScratchpadOverflow(mode);
    std::printf("  %-10s overflowing write %s; Alice's key %s\n",
                mode == SecurityMode::Baseline ? "baseline:" : "protected:",
                r.overflow_write_succeeded ? "LANDED" : "blocked",
                r.alice_key_corrupted ? "CORRUPTED" : "intact");
  }

  banner("3. Debug peripheral key theft (trace-buffer attack)");
  for (const auto mode : {SecurityMode::Baseline, SecurityMode::Protected}) {
    const auto r = soc::runDebugPortAttack(mode);
    std::printf(
        "  %-10s Eve %s the debug port; full AES key %s; supervisor "
        "debug access %s\n",
        mode == SecurityMode::Baseline ? "baseline:" : "protected:",
        r.eve_enabled_debug ? "ENABLED" : "could not enable",
        r.key_recovered ? "RECOVERED" : "safe",
        r.supervisor_read_ok ? "works" : "broken");
  }

  banner("4. Inappropriate key use / master key (Section 3.2.2)");
  for (const auto mode : {SecurityMode::Baseline, SecurityMode::Protected}) {
    const auto r = soc::runKeyMisuseAttack(mode);
    std::printf(
        "  %-10s master-key oracle %s; foreign-key decryption %s; "
        "legitimate use %s\n",
        mode == SecurityMode::Baseline ? "baseline:" : "protected:",
        r.master_key_output_released ? "OPEN" : "closed (declass rejected)",
        r.alice_key_output_released ? "WORKS FOR EVE" : "suppressed",
        r.own_key_ok && r.supervisor_master_ok ? "unaffected" : "BROKEN");
  }

  banner("5. Configuration register tampering (Section 3.2.4)");
  for (const auto mode : {SecurityMode::Baseline, SecurityMode::Protected}) {
    const auto r = soc::runConfigTamper(mode);
    std::printf(
        "  %-10s unprivileged write %s; supervisor write %s; public "
        "reads %s\n",
        mode == SecurityMode::Baseline ? "baseline:" : "protected:",
        r.eve_write_landed ? "LANDED" : "blocked",
        r.supervisor_write_landed ? "works" : "broken",
        r.eve_read_ok ? "work" : "broken");
  }

  banner("6. Cross-user DMA buffer theft (Fig. 2's DMA block)");
  for (const auto mode : {SecurityMode::Baseline, SecurityMode::Protected}) {
    const auto r = soc::runDmaTheftAttack(mode);
    std::printf(
        "  %-10s Alice's plaintext %s via DMA; foreign-page writes %s; "
        "Alice's own DMA %s (%.1f cyc/block)\n",
        mode == SecurityMode::Baseline ? "baseline:" : "protected:",
        r.alice_plaintext_stolen ? "STOLEN" : "safe",
        r.dst_write_blocked ? "blocked" : "LAND",
        r.legit_dma_ok ? "works" : "broken", r.cycles_per_block);
  }

  std::printf("\nAll six attack families succeed against the baseline and "
              "are blocked by the IFC-protected design.\n");
  return 0;
}
