// Fault-campaign bench: throughput and recovery-latency cost of the
// fail-secure hardening under seeded fault injection, hardening on vs off,
// at several fault rates. Emits one JSON record per configuration (plus a
// human-readable table) so campaign results can be tracked over time.
//
// "Recovery latency" is driver-visible: the mean extra device cycles a
// successful operation costs at a given fault rate compared to the same
// seed with no faults (retries, backoff, and scrub-induced aborts).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "accel/driver.h"
#include "aes/gcm.h"
#include "common/rng.h"
#include "soc/fault_injector.h"
#include "soc/metrics.h"

namespace {

using namespace aesifc;
using accel::AccelSession;
using accel::AccelStatus;
using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;
using accel::SessionOptions;
using lattice::Conf;
using lattice::Principal;

struct CampaignOutcome {
  unsigned ops = 0;
  unsigned ok = 0;
  unsigned gcm_ops = 0;  // AEAD seals interleaved with the block traffic
  unsigned gcm_ok = 0;
  // The fail-secure property under GHASH-state faults: a released tag that
  // differs from the golden host computation. Must stay 0 — a faulted op
  // may abort, but may never authenticate wrong data.
  unsigned wrong_tag_releases = 0;
  std::uint64_t device_cycles = 0;
  std::uint64_t retries = 0;
  soc::FaultCampaignReport report;
  AesAccelerator::Stats stats;
  accel::SessionTelemetry telemetry;  // terminal driver verdicts
};

// Single construction point for the robustness scorecard (the JSON record
// and the aggregate row must agree on how counters map).
soc::RobustnessStats robustnessOf(const CampaignOutcome& o) {
  soc::RobustnessStats rs;
  rs.faults_injected = o.report.injected;
  rs.faults_detected = o.stats.faults_detected;
  rs.faults_recovered = o.stats.faults_recovered;
  rs.fault_aborts = o.stats.fault_aborted;
  rs.retries = o.retries;
  rs.timeouts = o.telemetry.timeouts;
  rs.drops = o.stats.dropped + o.report.host_drops;
  return rs;
}

std::string campaignJson(bool hardened, double rate,
                         const CampaignOutcome& o, double per_op,
                         double recovery) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\"bench\":\"fault_campaign\",\"hardened\":%s,"
                "\"fault_rate\":%.3f,\"ops\":%u,\"ok\":%u,"
                "\"gcm_ops\":%u,\"gcm_ok\":%u,\"wrong_tag_releases\":%u,"
                "\"device_cycles\":%llu,\"cycles_per_ok_op\":%.2f,"
                "\"recovery_latency_cycles\":%.2f",
                hardened ? "true" : "false", rate, o.ops, o.ok, o.gcm_ops,
                o.gcm_ok, o.wrong_tag_releases,
                static_cast<unsigned long long>(o.device_cycles), per_op,
                recovery);
  return std::string(head) + ",\"robustness\":" + robustnessOf(o).toJson() +
         ",\"campaign\":" + o.report.toJson() + "}";
}

CampaignOutcome runCampaign(bool hardened, double rate, std::uint64_t seed,
                            unsigned ops_per_user) {
  AcceleratorConfig cfg;
  cfg.mode = SecurityMode::Protected;
  cfg.fault_hardening = hardened;
  cfg.out_buffer_depth = 16;
  AesAccelerator acc{cfg};
  acc.addUser(Principal::supervisor());
  constexpr unsigned kUsers = 3;
  unsigned users[kUsers];
  std::vector<std::vector<std::uint8_t>> keys(kUsers);
  Rng rng{seed};
  for (unsigned u = 0; u < kUsers; ++u) {
    users[u] = acc.addUser(Principal::user("u" + std::to_string(u), u + 1));
    keys[u].resize(16);
    for (auto& b : keys[u]) b = static_cast<std::uint8_t>(rng.next());
    accel::loadKey128(acc, users[u], u + 1, 2 * u, keys[u],
                      Conf::category(u + 1));
  }

  soc::FaultCampaignConfig fcfg;
  fcfg.seed = seed * 7919;
  fcfg.fault_rate = rate;
  soc::FaultInjector inj{acc, fcfg, {users[0], users[1], users[2]}};
  if (rate > 0.0) acc.setTickHook([&] { inj.tick(); });

  SessionOptions opts;
  opts.timeout_cycles = 1200;
  opts.max_retries = 3;
  opts.backoff_cycles = 16;
  std::vector<AccelSession> sessions;
  for (unsigned u = 0; u < kUsers; ++u)
    sessions.emplace_back(acc, users[u], u + 1, opts);

  CampaignOutcome out;
  std::vector<bool> needs_reload(kUsers, false);
  const std::uint64_t t0 = acc.cycle();
  for (unsigned round = 0; round < ops_per_user; ++round) {
    for (unsigned u = 0; u < kUsers; ++u) {
      if (needs_reload[u]) {
        if (!accel::loadKey128(acc, users[u], u + 1, 2 * u, keys[u],
                               Conf::category(u + 1))) {
          continue;
        }
        needs_reload[u] = false;
      }
      aes::Block pt;
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
      ++out.ops;
      const auto r = sessions[u].encryptBlock(pt);
      if (r.has_value()) {
        ++out.ok;
      } else if (r.status() == AccelStatus::Rejected) {
        needs_reload[u] = true;
      }
      // Every fourth round, a whole AEAD op rides along so the GHASH fault
      // sites see live state. Any released tag is checked against the
      // golden host GCM — hardened or not, a wrong tag accepted as valid
      // is the campaign's one disqualifying outcome.
      if (round % 4 == 3 && !needs_reload[u]) {
        std::vector<std::uint8_t> msg(40), aad(8), iv(12);
        for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
        for (auto& b : aad) b = static_cast<std::uint8_t>(rng.next());
        for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());
        ++out.gcm_ops;
        const auto sealed = sessions[u].gcmSeal(msg, aad, iv);
        if (sealed.has_value()) {
          ++out.gcm_ok;
          const auto want = aes::gcmEncrypt(
              msg, aad, aes::expandKey(keys[u], aes::KeySize::Aes128), iv);
          if (sealed->tag != want.tag ||
              sealed->ciphertext != want.ciphertext) {
            ++out.wrong_tag_releases;
          }
        } else if (sealed.status() == AccelStatus::Rejected) {
          needs_reload[u] = true;
        }
      }
    }
  }
  acc.setTickHook(nullptr);
  inj.releaseStuckReceivers();
  out.device_cycles = acc.cycle() - t0;
  for (const auto& s : sessions) {
    out.retries += s.retries();
    out.telemetry += s.telemetry();
  }
  out.report = inj.report();
  out.stats = acc.stats();
  return out;
}

void printCampaigns() {
  constexpr unsigned kOps = 40;
  constexpr std::uint64_t kSeed = 2019;
  const double rates[] = {0.0, 0.005, 0.02, 0.05};

  std::printf("==============================================================\n");
  std::printf("Fault campaign: fail-secure hardening cost & recovery\n");
  std::printf("==============================================================\n");
  std::printf("%-9s %-7s %-6s %-6s %-8s %-9s %-10s %-9s %-9s %-8s\n",
              "hardened", "rate", "ops", "ok", "gcm-ok", "cycles",
              "cyc/ok-op", "detected", "aborted", "retries");

  // Per-mode fault-free baseline for the recovery-latency delta, plus one
  // aggregate scorecard per mode summed over all rates.
  double base_cyc_per_op[2] = {0.0, 0.0};
  for (const bool hardened : {false, true}) {
    soc::RobustnessStats aggregate;
    for (const double rate : rates) {
      const auto o = runCampaign(hardened, rate, kSeed, kOps);
      const double per_op =
          o.ok ? static_cast<double>(o.device_cycles) / o.ok : 0.0;
      if (rate == 0.0) base_cyc_per_op[hardened ? 1 : 0] = per_op;
      const double recovery =
          per_op - base_cyc_per_op[hardened ? 1 : 0];  // extra cycles/op
      std::printf(
          "%-9s %-7.3f %-6u %-6u %-2u/%-5u %-9llu %-10.1f %-9llu %-9llu "
          "%-8llu%s\n",
          hardened ? "yes" : "no", rate, o.ops, o.ok, o.gcm_ok, o.gcm_ops,
          static_cast<unsigned long long>(o.device_cycles), per_op,
          static_cast<unsigned long long>(o.stats.faults_detected),
          static_cast<unsigned long long>(o.stats.fault_aborted),
          static_cast<unsigned long long>(o.retries),
          o.wrong_tag_releases ? "  [WRONG TAG RELEASED!]" : "");
      aggregate += robustnessOf(o);
      std::printf("JSON %s\n",
                  campaignJson(hardened, rate, o, per_op, recovery).c_str());
    }
    std::printf(
        "JSON {\"bench\":\"fault_campaign_aggregate\",\"hardened\":%s,"
        "\"robustness\":%s}\n",
        hardened ? "true" : "false", aggregate.toJson().c_str());
  }
  std::printf(
      "\nHardening on a quiet device costs ~0 cycles; under faults the\n"
      "unhardened design keeps its throughput by silently emitting wrong\n"
      "ciphertext, while the hardened design converts upsets into detected\n"
      "aborts + bounded driver retries. The AEAD column is the fail-secure\n"
      "check for the GHASH sites: the unhardened device releases auth tags\n"
      "that differ from the golden host GCM, the hardened device must not —\n"
      "its wrong_tag_releases stays 0 at every fault rate.\n\n");
}

void BM_CampaignHardened(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runCampaign(true, rate, 2019, 20));
  }
}
BENCHMARK(BM_CampaignHardened)->Arg(0)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_CampaignUnhardened(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runCampaign(false, rate, 2019, 20));
  }
}
BENCHMARK(BM_CampaignUnhardened)->Arg(0)->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printCampaigns();
  // AESIFC_BENCH_SMOKE: CI keep-alive mode — the campaign table and JSON
  // records above already ran; skip the Google Benchmark timing loops.
  const char* smoke = std::getenv("AESIFC_BENCH_SMOKE");
  if (smoke && *smoke && std::string{smoke} != "0") return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
