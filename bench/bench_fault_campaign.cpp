// Fault-campaign bench: throughput and recovery-latency cost of the
// fail-secure hardening under seeded fault injection, hardening on vs off,
// at several fault rates. Emits one JSON record per configuration (plus a
// human-readable table) so campaign results can be tracked over time.
//
// "Recovery latency" is driver-visible: the mean extra device cycles a
// successful operation costs at a given fault rate compared to the same
// seed with no faults (retries, backoff, and scrub-induced aborts).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <map>

#include "accel/driver.h"
#include "aes/gcm.h"
#include "common/rng.h"
#include "soc/fault_injector.h"
#include "soc/metrics.h"
#include "soc/pool.h"
#include "soc/supervisor.h"

namespace {

using namespace aesifc;
using accel::AccelSession;
using accel::AccelStatus;
using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;
using accel::SessionOptions;
using lattice::Conf;
using lattice::Principal;

struct CampaignOutcome {
  unsigned ops = 0;
  unsigned ok = 0;
  unsigned gcm_ops = 0;  // AEAD seals interleaved with the block traffic
  unsigned gcm_ok = 0;
  // The fail-secure property under GHASH-state faults: a released tag that
  // differs from the golden host computation. Must stay 0 — a faulted op
  // may abort, but may never authenticate wrong data.
  unsigned wrong_tag_releases = 0;
  std::uint64_t device_cycles = 0;
  std::uint64_t retries = 0;
  soc::FaultCampaignReport report;
  AesAccelerator::Stats stats;
  accel::SessionTelemetry telemetry;  // terminal driver verdicts
};

// Single construction point for the robustness scorecard (the JSON record
// and the aggregate row must agree on how counters map).
soc::RobustnessStats robustnessOf(const CampaignOutcome& o) {
  soc::RobustnessStats rs;
  rs.faults_injected = o.report.injected;
  rs.faults_detected = o.stats.faults_detected;
  rs.faults_recovered = o.stats.faults_recovered;
  rs.fault_aborts = o.stats.fault_aborted;
  rs.retries = o.retries;
  rs.timeouts = o.telemetry.timeouts;
  rs.drops = o.stats.dropped + o.report.host_drops;
  return rs;
}

std::string campaignJson(bool hardened, double rate,
                         const CampaignOutcome& o, double per_op,
                         double recovery) {
  char head[256];
  std::snprintf(head, sizeof(head),
                "{\"bench\":\"fault_campaign\",\"hardened\":%s,"
                "\"fault_rate\":%.3f,\"ops\":%u,\"ok\":%u,"
                "\"gcm_ops\":%u,\"gcm_ok\":%u,\"wrong_tag_releases\":%u,"
                "\"device_cycles\":%llu,\"cycles_per_ok_op\":%.2f,"
                "\"recovery_latency_cycles\":%.2f",
                hardened ? "true" : "false", rate, o.ops, o.ok, o.gcm_ops,
                o.gcm_ok, o.wrong_tag_releases,
                static_cast<unsigned long long>(o.device_cycles), per_op,
                recovery);
  return std::string(head) + ",\"robustness\":" + robustnessOf(o).toJson() +
         ",\"campaign\":" + o.report.toJson() + "}";
}

CampaignOutcome runCampaign(bool hardened, double rate, std::uint64_t seed,
                            unsigned ops_per_user) {
  AcceleratorConfig cfg;
  cfg.mode = SecurityMode::Protected;
  cfg.fault_hardening = hardened;
  cfg.out_buffer_depth = 16;
  AesAccelerator acc{cfg};
  acc.addUser(Principal::supervisor());
  constexpr unsigned kUsers = 3;
  unsigned users[kUsers];
  std::vector<std::vector<std::uint8_t>> keys(kUsers);
  Rng rng{seed};
  for (unsigned u = 0; u < kUsers; ++u) {
    users[u] = acc.addUser(Principal::user("u" + std::to_string(u), u + 1));
    keys[u].resize(16);
    for (auto& b : keys[u]) b = static_cast<std::uint8_t>(rng.next());
    accel::loadKey128(acc, users[u], u + 1, 2 * u, keys[u],
                      Conf::category(u + 1));
  }

  soc::FaultCampaignConfig fcfg;
  fcfg.seed = seed * 7919;
  fcfg.fault_rate = rate;
  soc::FaultInjector inj{acc, fcfg, {users[0], users[1], users[2]}};
  if (rate > 0.0) acc.setTickHook([&] { inj.tick(); });

  SessionOptions opts;
  opts.timeout_cycles = 1200;
  opts.max_retries = 3;
  opts.backoff_cycles = 16;
  std::vector<AccelSession> sessions;
  for (unsigned u = 0; u < kUsers; ++u)
    sessions.emplace_back(acc, users[u], u + 1, opts);

  CampaignOutcome out;
  std::vector<bool> needs_reload(kUsers, false);
  const std::uint64_t t0 = acc.cycle();
  for (unsigned round = 0; round < ops_per_user; ++round) {
    for (unsigned u = 0; u < kUsers; ++u) {
      if (needs_reload[u]) {
        if (!accel::loadKey128(acc, users[u], u + 1, 2 * u, keys[u],
                               Conf::category(u + 1))) {
          continue;
        }
        needs_reload[u] = false;
      }
      aes::Block pt;
      for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
      ++out.ops;
      const auto r = sessions[u].encryptBlock(pt);
      if (r.has_value()) {
        ++out.ok;
      } else if (r.status() == AccelStatus::Rejected) {
        needs_reload[u] = true;
      }
      // Every fourth round, a whole AEAD op rides along so the GHASH fault
      // sites see live state. Any released tag is checked against the
      // golden host GCM — hardened or not, a wrong tag accepted as valid
      // is the campaign's one disqualifying outcome.
      if (round % 4 == 3 && !needs_reload[u]) {
        std::vector<std::uint8_t> msg(40), aad(8), iv(12);
        for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
        for (auto& b : aad) b = static_cast<std::uint8_t>(rng.next());
        for (auto& b : iv) b = static_cast<std::uint8_t>(rng.next());
        ++out.gcm_ops;
        const auto sealed = sessions[u].gcmSeal(msg, aad, iv);
        if (sealed.has_value()) {
          ++out.gcm_ok;
          const auto want = aes::gcmEncrypt(
              msg, aad, aes::expandKey(keys[u], aes::KeySize::Aes128), iv);
          if (sealed->tag != want.tag ||
              sealed->ciphertext != want.ciphertext) {
            ++out.wrong_tag_releases;
          }
        } else if (sealed.status() == AccelStatus::Rejected) {
          needs_reload[u] = true;
        }
      }
    }
  }
  acc.setTickHook(nullptr);
  inj.releaseStuckReceivers();
  out.device_cycles = acc.cycle() - t0;
  for (const auto& s : sessions) {
    out.retries += s.retries();
    out.telemetry += s.telemetry();
  }
  out.report = inj.report();
  out.stats = acc.stats();
  return out;
}

void printCampaigns() {
  constexpr unsigned kOps = 40;
  constexpr std::uint64_t kSeed = 2019;
  const double rates[] = {0.0, 0.005, 0.02, 0.05};

  std::printf("==============================================================\n");
  std::printf("Fault campaign: fail-secure hardening cost & recovery\n");
  std::printf("==============================================================\n");
  std::printf("%-9s %-7s %-6s %-6s %-8s %-9s %-10s %-9s %-9s %-8s\n",
              "hardened", "rate", "ops", "ok", "gcm-ok", "cycles",
              "cyc/ok-op", "detected", "aborted", "retries");

  // Per-mode fault-free baseline for the recovery-latency delta, plus one
  // aggregate scorecard per mode summed over all rates.
  double base_cyc_per_op[2] = {0.0, 0.0};
  for (const bool hardened : {false, true}) {
    soc::RobustnessStats aggregate;
    for (const double rate : rates) {
      const auto o = runCampaign(hardened, rate, kSeed, kOps);
      const double per_op =
          o.ok ? static_cast<double>(o.device_cycles) / o.ok : 0.0;
      if (rate == 0.0) base_cyc_per_op[hardened ? 1 : 0] = per_op;
      const double recovery =
          per_op - base_cyc_per_op[hardened ? 1 : 0];  // extra cycles/op
      std::printf(
          "%-9s %-7.3f %-6u %-6u %-2u/%-5u %-9llu %-10.1f %-9llu %-9llu "
          "%-8llu%s\n",
          hardened ? "yes" : "no", rate, o.ops, o.ok, o.gcm_ok, o.gcm_ops,
          static_cast<unsigned long long>(o.device_cycles), per_op,
          static_cast<unsigned long long>(o.stats.faults_detected),
          static_cast<unsigned long long>(o.stats.fault_aborted),
          static_cast<unsigned long long>(o.retries),
          o.wrong_tag_releases ? "  [WRONG TAG RELEASED!]" : "");
      aggregate += robustnessOf(o);
      std::printf("JSON %s\n",
                  campaignJson(hardened, rate, o, per_op, recovery).c_str());
    }
    std::printf(
        "JSON {\"bench\":\"fault_campaign_aggregate\",\"hardened\":%s,"
        "\"robustness\":%s}\n",
        hardened ? "true" : "false", aggregate.toJson().c_str());
  }
  std::printf(
      "\nHardening on a quiet device costs ~0 cycles; under faults the\n"
      "unhardened design keeps its throughput by silently emitting wrong\n"
      "ciphertext, while the hardened design converts upsets into detected\n"
      "aborts + bounded driver retries. The AEAD column is the fail-secure\n"
      "check for the GHASH sites: the unhardened device releases auth tags\n"
      "that differ from the golden host GCM, the hardened device must not —\n"
      "its wrong_tag_releases stays 0 at every fault rate.\n\n");
}

// --- Pool resilience: availability decorrelation under shard quarantine -----
//
// Two identical runs over an elastic 4-shard pool — one clean, one with a
// single shard force-quarantined mid-campaign (plus a round-key fault, so
// the quarantine is "real") and the supervisor evacuating its tenants. The
// decorrelation claims, each a gated JSON field:
//
//  * aggregate_availability >= (shards-1)/shards during the quarantine run:
//    losing one shard costs at most that shard's share (in practice less —
//    evacuated tenants keep serving from their new homes and the software
//    fallback covers the gap).
//  * untouched_trace_mismatch == 0: shards that neither quarantined nor
//    received evacuees produce BIT-IDENTICAL completion-cycle traces in
//    both runs — the incident is invisible outside the shards it touched,
//    which is the share-nothing isolation argument stated as cycles.
//  * wrong_key_uses == 0: no request ever reached a serve path under a
//    stale or zeroized key while tenants were being evacuated mid-traffic.

struct PoolResilienceOutcome {
  std::uint64_t offered = 0;
  std::uint64_t ok = 0;
  std::vector<std::uint64_t> shard_offered;  // by the tenant's original home
  std::vector<std::uint64_t> shard_ok;
  // tenant -> completion-cycle sequence (the per-shard device timeline).
  std::map<unsigned, std::vector<std::uint64_t>> traces;
  std::vector<unsigned> home;   // tenant -> shard at placement time
  std::vector<unsigned> final_shard;
  unsigned quarantined = 0;     // shard hit in the quarantine scenario
  std::uint64_t migrations = 0;
  std::uint64_t wrong_key_uses = 0;
};

PoolResilienceOutcome runPoolResilience(bool quarantine, std::uint64_t seed) {
  constexpr unsigned kShards = 4, kTenants = 8;
  constexpr unsigned kRounds = 30, kPerRound = 6, kQuarantineRound = 10;

  soc::PoolConfig cfg;
  cfg.shards = kShards;
  cfg.service.batch_size = 4;
  cfg.service.quota_per_round = 16;
  cfg.service.global_high_watermark = 4096;
  // Keep the sick shard down for the whole campaign: this measures life
  // WITHOUT the shard, not the probation path.
  cfg.service.health.quarantine_residency_cycles = 1ull << 40;
  soc::EnginePool pool{cfg};
  soc::PoolSupervisor sup{pool, soc::SupervisorConfig{}};

  PoolResilienceOutcome out;
  out.shard_offered.assign(kShards, 0);
  out.shard_ok.assign(kShards, 0);
  std::vector<unsigned> ids;
  Rng rng{seed};
  for (unsigned t = 0; t < kTenants; ++t) {
    soc::PoolTenantSpec spec;
    spec.name = "tenant-" + std::to_string(t);
    spec.category = (t % 14) + 1;
    spec.key.resize(16);
    for (auto& b : spec.key) b = static_cast<std::uint8_t>(rng.next());
    spec.queue_depth = 64;
    const auto placed = pool.addTenant(spec);
    if (!placed.placed) std::abort();  // campaign config guarantees room
    ids.push_back(placed.tenant);
    out.home.push_back(pool.shardOf(placed.tenant));
  }
  // Both scenarios agree on the victim (placement is deterministic).
  out.quarantined = pool.shardOf(ids[0]);

  for (unsigned round = 0; round < kRounds; ++round) {
    if (quarantine && round == kQuarantineRound) {
      (void)pool.shardEngine(out.quarantined)
          .injectFault(accel::FaultSite::RoundKey, 1, 3);
      pool.shardService(out.quarantined)
          .forceQuarantine("campaign: shard incident");
    }
    for (unsigned i = 0; i < kPerRound; ++i) {
      for (unsigned t = 0; t < kTenants; ++t) {
        aes::Block pt;
        for (auto& b : pt) b = static_cast<std::uint8_t>(rng.next());
        ++out.offered;
        ++out.shard_offered[out.home[t]];
        (void)pool.submit(ids[t], pt);
      }
    }
    sup.poll();
    for (unsigned p = 0; p < 4; ++p) pool.pump();
  }
  pool.runUntilIdle(1u << 20);

  for (unsigned t = 0; t < kTenants; ++t) {
    out.final_shard.push_back(pool.shardOf(ids[t]));
    auto& trace = out.traces[t];
    while (auto c = pool.fetch(ids[t])) {
      trace.push_back(c->complete_cycle);
      if (c->status == soc::CompletionStatus::Ok) {
        ++out.ok;
        ++out.shard_ok[out.home[t]];
      }
    }
  }
  out.migrations = pool.poolStats().migrations;
  out.wrong_key_uses = pool.aggregateStats().wrong_key_uses;
  return out;
}

void printPoolResilience() {
  constexpr std::uint64_t kSeed = 2019;
  constexpr unsigned kShards = 4, kTenants = 8;
  const auto base = runPoolResilience(false, kSeed);
  const auto quar = runPoolResilience(true, kSeed);

  // Untouched shards: not the quarantined one, nobody left, nobody arrived.
  std::vector<bool> untouched(kShards, true);
  untouched[quar.quarantined] = false;
  for (unsigned t = 0; t < kTenants; ++t) {
    if (quar.final_shard[t] != quar.home[t]) {
      untouched[quar.home[t]] = false;
      untouched[quar.final_shard[t]] = false;
    }
  }
  unsigned untouched_count = 0;
  unsigned trace_mismatch = 0;
  for (unsigned s = 0; s < kShards; ++s) {
    if (!untouched[s]) continue;
    ++untouched_count;
    for (unsigned t = 0; t < kTenants; ++t) {
      if (quar.home[t] != s) continue;
      if (base.traces.at(t) != quar.traces.at(t)) ++trace_mismatch;
    }
  }

  const double floor =
      static_cast<double>(kShards - 1) / static_cast<double>(kShards);
  std::printf("==============================================================\n");
  std::printf("Pool resilience: availability decorrelation under quarantine\n");
  std::printf("==============================================================\n");
  std::printf("%-11s %-8s %-8s %-13s %-11s %-10s %-9s\n", "scenario",
              "offered", "ok", "availability", "migrations", "untouched",
              "wrongkey");
  for (const auto* o : {&base, &quar}) {
    const bool q = (o == &quar);
    const double avail =
        o->offered ? static_cast<double>(o->ok) / o->offered : 0.0;
    std::printf("%-11s %-8llu %-8llu %-13.4f %-11llu %-10s %-9llu\n",
                q ? "quarantine" : "baseline",
                static_cast<unsigned long long>(o->offered),
                static_cast<unsigned long long>(o->ok), avail,
                static_cast<unsigned long long>(o->migrations),
                q ? (std::to_string(untouched_count) + " shards").c_str()
                  : "-",
                static_cast<unsigned long long>(o->wrong_key_uses));
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"bench\":\"pool_resilience\",\"scenario\":\"%s\","
        "\"shards\":%u,\"tenants\":%u,\"offered\":%llu,\"ok\":%llu,"
        "\"aggregate_availability\":%.4f,\"availability_floor\":%.4f,"
        "\"untouched_shards\":%u,\"untouched_trace_mismatch\":%u,"
        "\"wrong_key_uses\":%llu,\"migrations\":%llu,"
        "\"quarantined_shard\":%u}",
        q ? "quarantine" : "baseline", kShards, kTenants,
        static_cast<unsigned long long>(o->offered),
        static_cast<unsigned long long>(o->ok), avail, floor,
        q ? untouched_count : kShards, q ? trace_mismatch : 0u,
        static_cast<unsigned long long>(o->wrong_key_uses),
        static_cast<unsigned long long>(o->migrations), quar.quarantined);
    std::printf("JSON %s\n", buf);
  }
  std::printf(
      "\nLosing one of %u shards keeps aggregate availability above %.0f%%\n"
      "(the quarantined shard's tenants are evacuated mid-traffic and keep\n"
      "serving from their new homes), the untouched shards' completion-cycle\n"
      "traces are bit-identical to the clean run, and wrong_key_uses stays 0\n"
      "through the whole evacuation.\n\n",
      kShards, 100.0 * floor);
}

void BM_CampaignHardened(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runCampaign(true, rate, 2019, 20));
  }
}
BENCHMARK(BM_CampaignHardened)->Arg(0)->Arg(20)->Unit(benchmark::kMillisecond);

void BM_CampaignUnhardened(benchmark::State& state) {
  const double rate = static_cast<double>(state.range(0)) / 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(runCampaign(false, rate, 2019, 20));
  }
}
BENCHMARK(BM_CampaignUnhardened)->Arg(0)->Arg(20)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printCampaigns();
  printPoolResilience();
  // AESIFC_BENCH_SMOKE: CI keep-alive mode — the campaign table and JSON
  // records above already ran; skip the Google Benchmark timing loops.
  const char* smoke = std::getenv("AESIFC_BENCH_SMOKE");
  if (smoke && *smoke && std::string{smoke} != "0") return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
