// On-device AEAD throughput: whole GCM operations (CTR keystream, H, GHASH,
// tag — all under label enforcement on the accelerator) versus the
// host-GHASH split the paper's threat model warns about, where the device
// only produces the CTR keystream and the hash subkey H lives in host
// memory. Both sides ride the same sharded engine pool so the comparison
// isolates the cost of doing the authentication on-device.
//
// Committed baseline: bench/BENCH_gcm.json (the `JSON ` lines below). The
// CI gate checks the blocks/device-cycle columns stay within tolerance.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "aes/gcm.h"
#include "soc/pool.h"

namespace {

using namespace aesifc;

unsigned envOr(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const unsigned long n = std::strtoul(v, nullptr, 10);
  return n == 0 ? fallback : static_cast<unsigned>(n);
}

bool smokeMode() {
  const char* v = std::getenv("AESIFC_BENCH_SMOKE");
  return v && *v && std::string{v} != "0";
}

struct GcmRunResult {
  std::uint64_t ops = 0;
  std::uint64_t blocks = 0;         // payload blocks authenticated+encrypted
  std::uint64_t device_cycles = 0;  // slowest shard's cycle counter
  double wall_seconds = 0.0;
  bool all_ok = true;
};

soc::EnginePool makePool(unsigned shards, unsigned msg_blocks) {
  soc::PoolConfig cfg;
  cfg.shards = shards;
  // Closed-loop waves need RejectNew: under ShedOldest a full queue would
  // silently trade queued ops for fresh ones and inflate the block count.
  cfg.service.overflow = soc::OverflowPolicy::RejectNew;
  // Let the raw-CTR side batch a whole message back-to-back, mirroring how
  // the GCM sequencer streams a message's counter blocks into the pipe.
  cfg.service.batch_size = msg_blocks;
  cfg.service.quota_per_round = msg_blocks < 16 ? 16 : msg_blocks;
  cfg.service.global_high_watermark = 1u << 20;
  return soc::EnginePool{cfg};
}

std::vector<unsigned> addTenants(soc::EnginePool& pool, unsigned tenants) {
  std::vector<unsigned> ids;
  for (unsigned t = 0; t < tenants; ++t) {
    soc::PoolTenantSpec spec;
    spec.name = "tenant-" + std::to_string(t);
    spec.category = t + 1;
    spec.key.assign(16, 0);
    for (unsigned i = 0; i < 16; ++i)
      spec.key[i] = static_cast<std::uint8_t>(0x40 + 13 * t + i);
    spec.queue_depth = 64;
    const soc::PlaceResult placed = pool.addTenant(spec);
    if (!placed.placed) throw std::runtime_error("bench: pool refused tenant");
    ids.push_back(placed.tenant);
  }
  return ids;
}

std::vector<std::uint8_t> messageOf(unsigned tenant, unsigned op,
                                    unsigned msg_blocks) {
  std::vector<std::uint8_t> m(16u * msg_blocks);
  for (std::size_t i = 0; i < m.size(); ++i)
    m[i] = static_cast<std::uint8_t>(op + 7 * i + tenant);
  return m;
}

std::vector<std::uint8_t> ivOf(unsigned tenant, unsigned op) {
  std::vector<std::uint8_t> iv(12);
  for (unsigned i = 0; i < 12; ++i)
    iv[i] = static_cast<std::uint8_t>(0x90 + tenant + 3 * op + i);
  return iv;
}

// Whole GCM seals through the pool's AEAD path: GHASH on the device.
GcmRunResult runDeviceGcm(unsigned shards, unsigned msg_blocks,
                          unsigned tenants, unsigned ops_per_tenant) {
  auto pool = makePool(shards, msg_blocks);
  const auto ids = addTenants(pool, tenants);
  std::vector<unsigned> submitted(tenants, 0);
  GcmRunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  while (done < static_cast<std::uint64_t>(tenants) * ops_per_tenant) {
    for (unsigned t = 0; t < tenants; ++t) {
      while (submitted[t] < ops_per_tenant) {
        const auto pt = messageOf(t, submitted[t], msg_blocks);
        if (!pool.submitSeal(ids[t], pt, {}, ivOf(t, submitted[t])).admitted)
          break;  // AEAD queue full: next wave
        ++submitted[t];
      }
    }
    pool.runUntilIdle(1u << 24);
    for (unsigned t = 0; t < tenants; ++t) {
      while (auto c = pool.fetchAead(ids[t])) {
        ++done;
        if (c->status != soc::CompletionStatus::Ok) r.all_ok = false;
      }
    }
  }
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.ops = done;
  r.blocks = done * msg_blocks;
  r.device_cycles = pool.maxShardCycle();
  return r;
}

// The split design: the device only runs raw AES-CTR keystream blocks; the
// host XORs and GHASHes the result itself (so H is host-resident — exactly
// the exposure the on-device unit removes). Device cycles measure only the
// keystream traffic; the host hash rides the wall clock.
GcmRunResult runHostGhash(unsigned shards, unsigned msg_blocks,
                          unsigned tenants, unsigned ops_per_tenant) {
  auto pool = makePool(shards, msg_blocks);
  const auto ids = addTenants(pool, tenants);
  // Host-side GHASH keys, one per tenant (H = E(K, 0)).
  std::vector<aes::GhashKey> hkeys;
  for (unsigned t = 0; t < tenants; ++t) {
    std::vector<std::uint8_t> key(16);
    for (unsigned i = 0; i < 16; ++i)
      key[i] = static_cast<std::uint8_t>(0x40 + 13 * t + i);
    const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
    const auto h = aes::encryptBlock(aes::Block{}, ek);
    aes::Tag128 ht{};
    std::copy(h.begin(), h.end(), ht.begin());
    hkeys.emplace_back(ht);
  }
  const std::uint64_t total_blocks =
      static_cast<std::uint64_t>(tenants) * ops_per_tenant * msg_blocks;
  std::vector<unsigned> submitted(tenants, 0);
  std::vector<std::vector<aes::Tag128>> pending(tenants);
  GcmRunResult r;
  r.ops = static_cast<std::uint64_t>(tenants) * ops_per_tenant;
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t done = 0;
  const unsigned blocks_per_tenant = ops_per_tenant * msg_blocks;
  while (done < total_blocks) {
    for (unsigned t = 0; t < tenants; ++t) {
      while (submitted[t] < blocks_per_tenant) {
        // A counter block: the CTR keystream request for block i of op j.
        aes::Block b{};
        for (unsigned i = 0; i < 12; ++i)
          b[i] = static_cast<std::uint8_t>(0x90 + t + i);
        b[12] = static_cast<std::uint8_t>(submitted[t] >> 24);
        b[13] = static_cast<std::uint8_t>(submitted[t] >> 16);
        b[14] = static_cast<std::uint8_t>(submitted[t] >> 8);
        b[15] = static_cast<std::uint8_t>(submitted[t]);
        if (!pool.submit(ids[t], b).admitted) break;
        ++submitted[t];
      }
    }
    pool.runUntilIdle(1u << 24);
    for (unsigned t = 0; t < tenants; ++t) {
      while (auto c = pool.fetch(ids[t])) {
        ++done;
        if (c->status != soc::CompletionStatus::Ok) r.all_ok = false;
        // Host half: XOR into ciphertext and fold into the running GHASH.
        aes::Tag128 ct{};
        for (unsigned i = 0; i < 16; ++i)
          ct[i] = static_cast<std::uint8_t>(c->data[i] ^ (done + 7 * i + t));
        pending[t].push_back(ct);
        if (pending[t].size() == msg_blocks) {
          aes::Tag128 y{};
          for (const auto& blk : pending[t]) {
            for (unsigned i = 0; i < 16; ++i) y[i] ^= blk[i];
            y = hkeys[t].mul(y);
          }
          // Fold the lengths block, completing GHASH for the message.
          aes::Tag128 len{};
          const std::uint64_t bits = 128ull * msg_blocks;
          for (int i = 0; i < 8; ++i)
            len[15 - i] = static_cast<std::uint8_t>(bits >> (8 * i));
          for (unsigned i = 0; i < 16; ++i) y[i] ^= len[i];
          y = hkeys[t].mul(y);
          if (y == aes::Tag128{}) r.all_ok = false;  // keep y observable
          pending[t].clear();
        }
      }
    }
  }
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.blocks = done;
  r.device_cycles = pool.maxShardCycle();
  return r;
}

void printRow(const char* mode, unsigned shards, unsigned batch,
              const GcmRunResult& r) {
  const double bpc = r.device_cycles ? static_cast<double>(r.blocks) /
                                           static_cast<double>(r.device_cycles)
                                     : 0.0;
  std::printf("%-7u %-6u %-11s %-7llu %-9llu %-11llu %-12.3f%s\n", shards,
              batch, mode, static_cast<unsigned long long>(r.ops),
              static_cast<unsigned long long>(r.blocks),
              static_cast<unsigned long long>(r.device_cycles), bpc,
              r.all_ok ? "" : "  [MISMATCH!]");
  std::printf(
      "JSON {\"bench\":\"gcm\",\"shards\":%u,\"batch\":%u,\"mode\":\"%s\","
      "\"ops\":%llu,\"blocks\":%llu,\"device_cycles\":%llu,"
      "\"blocks_per_device_cycle\":%.4f,\"wall_seconds\":%.4f}\n",
      shards, batch, mode, static_cast<unsigned long long>(r.ops),
      static_cast<unsigned long long>(r.blocks),
      static_cast<unsigned long long>(r.device_cycles), bpc, r.wall_seconds);
}

}  // namespace

int main() {
  const unsigned tenants = 4;
  const unsigned blocks_per_tenant =
      envOr("AESIFC_BENCH_BLOCKS", smokeMode() ? 64 : 256);
  std::printf("==============================================================\n");
  std::printf("AEAD throughput: on-device GHASH/GCM vs host-GHASH split\n");
  std::printf("==============================================================\n");
  std::printf(
      "%u tenants, ~%u payload blocks each per cell; batch = blocks per\n"
      "sealed message (and the raw-CTR side's batch size)\n\n",
      tenants, blocks_per_tenant);
  std::printf("%-7s %-6s %-11s %-7s %-9s %-11s %-12s\n", "shards", "batch",
              "mode", "ops", "blocks", "dev-cycles", "blk/dev-cyc");

  for (const unsigned shards : {1u, 2u, 4u}) {
    for (const unsigned batch : {1u, 4u, 16u, 64u}) {
      const unsigned ops =
          blocks_per_tenant / batch ? blocks_per_tenant / batch : 1;
      const auto dev = runDeviceGcm(shards, batch, tenants, ops);
      const auto host = runHostGhash(shards, batch, tenants, ops);
      printRow("device", shards, batch, dev);
      printRow("host_ghash", shards, batch, host);
      const double dev_bpc =
          dev.device_cycles ? static_cast<double>(dev.blocks) /
                                  static_cast<double>(dev.device_cycles)
                            : 0.0;
      const double host_bpc =
          host.device_cycles ? static_cast<double>(host.blocks) /
                                   static_cast<double>(host.device_cycles)
                             : 0.0;
      if (batch >= 16 && dev_bpc > 0.0 && host_bpc / dev_bpc > 2.0) {
        std::printf("  [SLOW] device GCM %.3f vs raw CTR %.3f blk/dev-cyc "
                    "exceeds the 2x budget\n",
                    dev_bpc, host_bpc);
      }
    }
  }
  std::printf(
      "\nThe device rows carry the whole AEAD (J0, keystream, GHASH, tag)\n"
      "under label enforcement; the host_ghash rows spend the same device\n"
      "cycles on keystream only and leave H exposed in host memory. The\n"
      "per-message overhead (J0 + E(K,J0) + lengths block) amortizes by\n"
      "batch 16 to well inside 2x of raw CTR throughput.\n");
  return 0;
}
