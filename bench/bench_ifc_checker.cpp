// Benchmarks the design-time side of the methodology: static IFC checking
// of the verification models (Figs. 3, 5, 8) and of the full unrolled
// AES-128 netlist, plus the dynamic (GLIFT/RTLIFT-style) tracker. The
// paper's claim is "low design effort and low implementation overhead";
// this harness quantifies the analysis cost side.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ifc/checker.h"
#include "ifc/tracker.h"
#include "rtl/aes_ir.h"
#include "rtl/verif_models.h"

namespace {

using namespace aesifc;

void printSummary() {
  std::printf("==============================================================\n");
  std::printf("Static IFC checker over the verification models (Fig. 3/5/8)\n");
  std::printf("==============================================================\n");
  struct Case {
    const char* name;
    hdl::Module m;
    bool expect_ok;
  };
  Case cases[] = {
      {"cache tags (Fig.3)", rtl::buildCacheTags(false), true},
      {"cache tags, buggy", rtl::buildCacheTags(true), false},
      {"tagged scratchpad (Fig.5)", rtl::buildTaggedScratchpad(true), true},
      {"scratchpad, unchecked", rtl::buildTaggedScratchpad(false), false},
      {"meet-gated stall (Fig.8)", rtl::buildStallPipeline(true), true},
      {"ungated stall", rtl::buildStallPipeline(false), false},
      {"unrolled AES-128 netlist", rtl::buildAesEncrypt128(nullptr), true},
  };
  std::printf("%-28s %-9s %-9s %-8s %-8s\n", "design", "signals", "exprs",
              "verdict", "viol.");
  for (auto& c : cases) {
    const auto report = ifc::check(c.m);
    std::printf("%-28s %-9zu %-9zu %-8s %-8zu%s\n", c.name,
                c.m.signals().size(), c.m.exprs().size(),
                report.ok() ? "PASS" : "REJECT", report.violations.size(),
                report.ok() == c.expect_ok ? "" : "  [UNEXPECTED]");
  }

  std::printf("\nPer-value analysis scaling (N-stage tagged stall pipeline;\n"
              "valuation space = 4^(N+2)):\n");
  std::printf("%-8s %-12s %-10s\n", "stages", "valuations", "verdict");
  for (unsigned n = 2; n <= 5; ++n) {
    auto m = rtl::buildStallPipelineN(n, true);
    const auto report = ifc::check(m);
    std::printf("%-8u %-12llu %-10s\n", n,
                1ull << (2 * (n + 2)),
                report.ok() ? "PASS" : "REJECT");
  }
  std::printf("\n");
}

void BM_CheckCacheTags(benchmark::State& state) {
  auto m = rtl::buildCacheTags(false);
  for (auto _ : state) benchmark::DoNotOptimize(ifc::check(m));
}
BENCHMARK(BM_CheckCacheTags);

void BM_CheckScratchpad(benchmark::State& state) {
  auto m = rtl::buildTaggedScratchpad(true);
  for (auto _ : state) benchmark::DoNotOptimize(ifc::check(m));
}
BENCHMARK(BM_CheckScratchpad)->Unit(benchmark::kMillisecond);

void BM_CheckStallPipeline(benchmark::State& state) {
  auto m = rtl::buildStallPipeline(true);
  for (auto _ : state) benchmark::DoNotOptimize(ifc::check(m));
}
BENCHMARK(BM_CheckStallPipeline);

void BM_CheckAesNetlist(benchmark::State& state) {
  auto m = rtl::buildAesEncrypt128(nullptr);
  for (auto _ : state) benchmark::DoNotOptimize(ifc::check(m));
}
BENCHMARK(BM_CheckAesNetlist)->Unit(benchmark::kMillisecond);

void BM_DynamicTrackerStep(benchmark::State& state) {
  auto m = rtl::buildStallPipeline(true);
  ifc::DynamicTracker t{m};
  t.poke("in_tag", BitVec(2, 1), lattice::Label::publicTrusted());
  t.poke("in_data", BitVec(8, 0x5a),
         lattice::Label{lattice::Conf::level(1), lattice::Integ::top()});
  for (auto _ : state) {
    t.step();
  }
}
BENCHMARK(BM_DynamicTrackerStep);

}  // namespace

int main(int argc, char** argv) {
  printSummary();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
