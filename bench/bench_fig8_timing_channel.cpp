// Reproduces Fig. 8 / Section 3.2.5: the stall covert channel. Alice
// modulates her receiver readiness with a secret; Eve decodes it from her
// own completion rate. The baseline leaks ~1 bit per window; the protected
// design's meet-gated stall (plus overflow buffer) drives the mutual
// information to ~0. Sweeps the window length to show the channel capacity
// shape, and statically verifies the gated/ungated stall logic.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ifc/checker.h"
#include "rtl/verif_models.h"
#include "soc/attacks.h"

namespace {

using namespace aesifc;
using soc::TimingChannelParams;

void printFig8() {
  std::printf("==============================================================\n");
  std::printf("Reproduction of Fig. 8 / Sec 3.2.5: stall covert channel\n");
  std::printf("==============================================================\n");
  std::printf(
      "%-10s %-10s %-12s %-10s %-12s %-12s %-12s\n", "design", "window",
      "MI(bits)", "accuracy", "eve lat avg", "eve lat sd", "stalls/denied");

  for (const unsigned window : {32u, 64u, 128u}) {
    for (const auto mode :
         {accel::SecurityMode::Baseline, accel::SecurityMode::Protected}) {
      TimingChannelParams p;
      p.window = window;
      p.secret_bits = 48;
      const auto r = soc::runTimingChannelAttack(mode, p);
      std::printf("%-10s %-10u %-12.3f %-10.2f %-12.1f %-12.2f %llu/%llu\n",
                  mode == accel::SecurityMode::Baseline ? "baseline"
                                                        : "protected",
                  window, r.mi_bits, r.accuracy, r.eve_latency.mean,
                  r.eve_latency.stddev,
                  static_cast<unsigned long long>(r.stalled_cycles),
                  static_cast<unsigned long long>(r.denied_stalls));
    }
  }

  std::printf("\nStatic verification of the stall logic (Fig. 8):\n");
  const auto gated = ifc::check(rtl::buildStallPipeline(true));
  const auto ungated = ifc::check(rtl::buildStallPipeline(false));
  std::printf("  meet-gated stall:  %s\n",
              gated.ok() ? "verified clean" : "REJECTED (unexpected)");
  std::printf("  ungated stall:     %zu timing violation(s) flagged\n",
              ungated.count(ifc::ViolationKind::TimingViolation));
  std::printf("\n");
}

void BM_TimingAttackBaseline(benchmark::State& state) {
  TimingChannelParams p;
  p.secret_bits = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        soc::runTimingChannelAttack(accel::SecurityMode::Baseline, p));
  }
}
BENCHMARK(BM_TimingAttackBaseline)->Unit(benchmark::kMillisecond);

void BM_TimingAttackProtected(benchmark::State& state) {
  TimingChannelParams p;
  p.secret_bits = 16;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        soc::runTimingChannelAttack(accel::SecurityMode::Protected, p));
  }
}
BENCHMARK(BM_TimingAttackProtected)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printFig8();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
