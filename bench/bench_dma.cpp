// DMA data-path study: the descriptor-ring engine against the synchronous
// MMIO-style DmaEngine and the service batch path, batch 1/4/16/64, plus
// the seeded descriptor-ring fault campaign whose two invariants
// (wrong_plaintext_releases == 0, cross_label_writes == 0) CI gates via
// tools/bench_gate.py --assert-zero.
//
// Records (stdout lines prefixed `JSON `):
//   {"bench":"dma_path","path":p,"batch":b,...}  one per path x batch cell.
//     `amortization_floor` states the analytic claim the ring path must
//     keep: with >= 16 blocks per descriptor, total ring overhead (fetch,
//     validation, completion) stays under 80 cycles per descriptor, i.e.
//     blocks_per_device_cycle >= batch / (batch + 80). Zero for cells the
//     claim doesn't cover (small batches, non-ring paths).
//   {"bench":"dma_ring_campaign","seed":s,...}   16 hardened seeds; CI
//     asserts the invariant fields are zero in every record.
//   {"bench":"dma_ring_campaign_unhardened",...} the control: the same
//     campaign on the unhardened engine, violations expected and reported.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "accel/driver.h"
#include "aes/modes.h"
#include "common/rng.h"
#include "soc/attacks.h"
#include "soc/dma.h"
#include "soc/service.h"

namespace {

using aesifc::accel::AcceleratorConfig;
using aesifc::accel::AesAccelerator;
using aesifc::accel::SecurityMode;
using aesifc::lattice::Principal;
using namespace aesifc::soc;

constexpr unsigned kBatches[] = {1, 4, 16, 64};
constexpr unsigned kTotalBlocks = 256;  // per cell, matching other benches

struct PathResult {
  std::uint64_t blocks = 0;
  std::uint64_t device_cycles = 0;
  double throughput() const {
    return device_cycles ? static_cast<double>(blocks) / device_cycles : 0.0;
  }
};

struct Rig {
  AesAccelerator acc{AcceleratorConfig{SecurityMode::Protected, 10, 64,
                                       false}};
  unsigned alice = 0;
  std::vector<std::uint8_t> key;
  HostMemory mem{64 * 1024};

  Rig() {
    alice = acc.addUser(Principal::user("alice", 1));
    aesifc::Rng rng{0xd3a};
    key.resize(16);
    for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
    if (!aesifc::accel::loadKey128(acc, alice, 1, 0, key,
                                   acc.principal(alice).authority.c)) {
      std::abort();
    }
    mem.setPageLabel(0, mem.size(), acc.principal(alice).authority);
    std::vector<std::uint8_t> data(16 * 1024);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
    mem.writeBytes(0x4000, data);  // src staging
  }
};

// Synchronous MMIO-style engine: one blocking run() per batch descriptor.
PathResult runSyncPath(unsigned batch) {
  Rig rig;
  DmaEngine dma{rig.acc, rig.mem};
  PathResult r;
  const std::uint64_t start = rig.acc.cycle();
  for (unsigned done = 0; done < kTotalBlocks; done += batch) {
    DmaDescriptor d;
    d.user = rig.alice;
    d.key_slot = 1;
    d.mode = DmaMode::EcbEncrypt;
    d.src = 0x4000;
    d.dst = 0x8000;
    d.len = 16 * batch;
    const auto res = dma.run(d);
    if (!res.ok) std::abort();
    r.blocks += res.blocks;
  }
  r.device_cycles = rig.acc.cycle() - start;
  return r;
}

// Descriptor-ring engine: one published descriptor per batch, futures
// resolved from completion events.
PathResult runRingPath(unsigned batch) {
  Rig rig;
  DmaRingEngine eng{rig.acc, rig.mem, /*hardened=*/true};
  DmaRingConfig rc;
  rc.desc_base = 0x0000;
  rc.desc_slots = 8;
  rc.chain_base = 0x400;
  rc.chain_slots = 16;
  rc.comp_base = 0x800;
  rc.comp_slots = 8;
  const unsigned ch = eng.addChannel(rc);
  DmaRingDriver drv{eng, rig.mem, ch, rc};
  PathResult r;
  const std::uint64_t start = rig.acc.cycle();
  for (unsigned done = 0; done < kTotalBlocks; done += batch) {
    DmaDescriptor d;
    d.user = rig.alice;
    d.key_slot = 1;
    d.mode = DmaMode::EcbEncrypt;
    d.src = 0x4000;
    d.dst = 0x8000;
    d.len = 16 * batch;
    const auto seq = drv.submitChain({d});
    if (!seq) std::abort();
    const auto* c = drv.wait(*seq, 1u << 20);
    if (c == nullptr || c->status != DmaError::None) std::abort();
    r.blocks += c->blocks;
  }
  r.device_cycles = rig.acc.cycle() - start;
  return r;
}

// Service batch path, MMIO (use_ring=false) or ring-routed (true).
PathResult runServicePath(unsigned batch, bool use_ring) {
  Rig rig;
  ServiceConfig cfg;
  cfg.batch_size = batch;
  cfg.quota_per_round = batch;
  cfg.global_high_watermark = 2 * batch + 8;
  cfg.use_dma_ring = use_ring;
  cfg.dma_ring_min_run = 16;
  AccelService svc{rig.acc, cfg};
  TenantSpec spec;
  spec.user = rig.alice;
  spec.key_slot = 1;
  spec.cell_base = 0;
  spec.key = rig.key;
  spec.key_conf = rig.acc.principal(rig.alice).authority.c;
  spec.queue_depth = batch + 4;
  const unsigned t = svc.addTenant(spec);

  aesifc::Rng rng{0xb10c};
  PathResult r;
  const std::uint64_t start = rig.acc.cycle();
  for (unsigned done = 0; done < kTotalBlocks; done += batch) {
    for (unsigned i = 0; i < batch; ++i) {
      aesifc::aes::Block blk;
      for (auto& b : blk) b = static_cast<std::uint8_t>(rng.next());
      if (!svc.submit(t, blk).admitted) std::abort();
    }
    svc.runUntilIdle(1u << 20);
    for (unsigned i = 0; i < batch; ++i) {
      const auto c = svc.fetch(t);
      if (!c || c->status != CompletionStatus::Ok) std::abort();
      ++r.blocks;
    }
  }
  r.device_cycles = rig.acc.cycle() - start;
  return r;
}

void printPathMatrix() {
  std::printf("DMA data paths, 256 blocks/cell, blocks per device cycle\n");
  std::printf("%-14s %6s %10s %14s %10s\n", "path", "batch", "blocks",
              "device_cycles", "blk/cyc");
  const char* names[] = {"sync", "ring", "service", "service_ring"};
  for (const unsigned batch : kBatches) {
    PathResult res[4] = {runSyncPath(batch), runRingPath(batch),
                         runServicePath(batch, false),
                         runServicePath(batch, true)};
    for (unsigned p = 0; p < 4; ++p) {
      const bool ring_path = (p == 1 || p == 3);
      const double floor = (ring_path && batch >= 16)
                               ? static_cast<double>(batch) / (batch + 80.0)
                               : 0.0;
      std::printf("%-14s %6u %10llu %14llu %10.4f\n", names[p], batch,
                  static_cast<unsigned long long>(res[p].blocks),
                  static_cast<unsigned long long>(res[p].device_cycles),
                  res[p].throughput());
      std::printf(
          "JSON {\"bench\":\"dma_path\",\"path\":\"%s\",\"batch\":%u,"
          "\"blocks\":%llu,\"device_cycles\":%llu,"
          "\"blocks_per_device_cycle\":%.4f,\"amortization_floor\":%.4f}\n",
          names[p], batch, static_cast<unsigned long long>(res[p].blocks),
          static_cast<unsigned long long>(res[p].device_cycles),
          res[p].throughput(), floor);
    }
  }
  std::printf("\n");
}

void printRingCampaign() {
  std::printf(
      "Hardened descriptor-ring fault campaign, 16 seeds x 21 descriptors\n"
      "(scripted scenarios: torn ownership, chain loop, OOB next, completion\n"
      "overflow, stalled ring, stale generation, TOCTOU dst rewrite; plus\n"
      "random ring/host faults at rate 0.02)\n");
  std::printf("%6s %6s %8s %8s %6s %6s %6s %6s\n", "seed", "ok", "refused",
              "unresl", "wdog", "recov", "wrongP", "xlabel");
  RingCampaignReport total;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    RingCampaignConfig cfg;
    cfg.seed = seed;
    cfg.descriptors = 21;
    const auto rep = runRingFaultCampaign(cfg);
    std::printf("%6llu %6llu %8llu %8llu %6llu %6llu %6llu %6llu\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(rep.completed_ok),
                static_cast<unsigned long long>(rep.refused),
                static_cast<unsigned long long>(rep.unresolved),
                static_cast<unsigned long long>(rep.watchdog_fires),
                static_cast<unsigned long long>(rep.recoveries),
                static_cast<unsigned long long>(rep.wrong_plaintext_releases),
                static_cast<unsigned long long>(rep.cross_label_writes));
    std::printf(
        "JSON {\"bench\":\"dma_ring_campaign\",\"seed\":%llu,"
        "\"descriptors\":%u,\"completed_ok\":%llu,\"refused\":%llu,"
        "\"unresolved\":%llu,\"watchdog_fires\":%llu,\"recoveries\":%llu,"
        "\"ring_faults\":%llu,\"wrong_plaintext_releases\":%llu,"
        "\"cross_label_writes\":%llu,\"partial_writes\":%llu}\n",
        static_cast<unsigned long long>(seed), rep.descriptors,
        static_cast<unsigned long long>(rep.completed_ok),
        static_cast<unsigned long long>(rep.refused),
        static_cast<unsigned long long>(rep.unresolved),
        static_cast<unsigned long long>(rep.watchdog_fires),
        static_cast<unsigned long long>(rep.recoveries),
        static_cast<unsigned long long>(rep.ring_faults),
        static_cast<unsigned long long>(rep.wrong_plaintext_releases),
        static_cast<unsigned long long>(rep.cross_label_writes),
        static_cast<unsigned long long>(rep.partial_writes));
    total += rep;
  }

  // The control: same campaign, unhardened engine. NOT gated (violations
  // are the point) — it documents what the hardening buys.
  RingCampaignReport un;
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    RingCampaignConfig cfg;
    cfg.seed = seed;
    cfg.descriptors = 21;
    cfg.hardened = false;
    un += runRingFaultCampaign(cfg);
  }
  std::printf(
      "\nhardened:   %llu ok / %llu refused, 0 wrong-plaintext, 0 "
      "cross-label\nunhardened: %llu ok / %llu refused, %llu "
      "wrong-plaintext, %llu cross-label, %llu partial\n\n",
      static_cast<unsigned long long>(total.completed_ok),
      static_cast<unsigned long long>(total.refused),
      static_cast<unsigned long long>(un.completed_ok),
      static_cast<unsigned long long>(un.refused),
      static_cast<unsigned long long>(un.wrong_plaintext_releases),
      static_cast<unsigned long long>(un.cross_label_writes),
      static_cast<unsigned long long>(un.partial_writes));
  std::printf(
      "JSON {\"bench\":\"dma_ring_campaign_unhardened\",\"seeds\":16,"
      "\"descriptors\":%u,\"completed_ok\":%llu,\"refused\":%llu,"
      "\"wrong_plaintext_releases\":%llu,\"cross_label_writes\":%llu,"
      "\"partial_writes\":%llu}\n\n",
      un.descriptors, static_cast<unsigned long long>(un.completed_ok),
      static_cast<unsigned long long>(un.refused),
      static_cast<unsigned long long>(un.wrong_plaintext_releases),
      static_cast<unsigned long long>(un.cross_label_writes),
      static_cast<unsigned long long>(un.partial_writes));
}

void BM_RingPath(benchmark::State& state) {
  const unsigned batch = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(runRingPath(batch));
  }
}
BENCHMARK(BM_RingPath)->Arg(1)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void BM_RingCampaign(benchmark::State& state) {
  for (auto _ : state) {
    RingCampaignConfig cfg;
    cfg.seed = 2019;
    cfg.descriptors = 21;
    benchmark::DoNotOptimize(runRingFaultCampaign(cfg));
  }
}
BENCHMARK(BM_RingCampaign)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printPathMatrix();
  printRingCampaign();
  // AESIFC_BENCH_SMOKE: CI keep-alive mode — the matrices and JSON records
  // above already ran; skip the Google Benchmark timing loops.
  const char* smoke = std::getenv("AESIFC_BENCH_SMOKE");
  if (smoke && *smoke && std::string{smoke} != "0") return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
