// Reproduces Fig. 1's structure (N = 10/12/14 rounds by key length, each
// block through SubBytes/ShiftRows/MixColumns/AddRoundKey + key expansion)
// and benchmarks the software golden model plus the 3-stages-per-round
// pipeline's cycle counts.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "accel/pipeline.h"
#include "aes/cipher.h"
#include "common/rng.h"

namespace {

using namespace aesifc;

unsigned pipelineLatency(aes::KeySize ks) {
  Rng rng{1};
  std::vector<std::uint8_t> key(aes::keyBytes(ks));
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  accel::RoundKeyRam ram;
  ram.store(0, aes::expandKey(key, ks), lattice::Conf::bottom(),
            lattice::Label::publicTrusted());
  accel::AesPipeline p{aes::numRounds(ks), ram};

  accel::StageSlot s;
  s.valid = true;
  s.total_rounds = aes::numRounds(ks);
  auto out = p.advance(s);  // entry edge: the block lands in stage 0
  unsigned cycles = 0;      // edges spent traversing the 3N stages
  while (!out && cycles < 100) {
    out = p.advance(std::nullopt);
    ++cycles;
  }
  return cycles;
}

void printFig1() {
  std::printf("==============================================================\n");
  std::printf("Reproduction of Fig. 1: AES flow, rounds per key size\n");
  std::printf("==============================================================\n");
  std::printf("%-10s %-8s %-12s %-16s\n", "key bits", "N", "round keys",
              "pipeline cycles");
  for (const auto ks :
       {aes::KeySize::Aes128, aes::KeySize::Aes192, aes::KeySize::Aes256}) {
    std::printf("%-10u %-8u %-12u %-16u\n", aes::keyBytes(ks) * 8,
                aes::numRounds(ks), aes::numRounds(ks) + 1,
                pipelineLatency(ks));
  }
  std::printf("(3 micro-op stages per round: N=10 gives the paper's 30-cycle"
              " latency)\n\n");
}

void BM_EncryptBlock(benchmark::State& state) {
  const auto ks = static_cast<aes::KeySize>(state.range(0));
  Rng rng{2};
  std::vector<std::uint8_t> key(aes::keyBytes(ks));
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  const auto ek = aes::expandKey(key, ks);
  aes::Block pt{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes::encryptBlock(pt, ek));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_EncryptBlock)
    ->Arg(static_cast<int>(aes::KeySize::Aes128))
    ->Arg(static_cast<int>(aes::KeySize::Aes192))
    ->Arg(static_cast<int>(aes::KeySize::Aes256));

void BM_DecryptBlock(benchmark::State& state) {
  Rng rng{3};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  const auto ek = aes::expandKey(key, aes::KeySize::Aes128);
  aes::Block ct{};
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes::decryptBlock(ct, ek));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_DecryptBlock);

void BM_KeyExpansion(benchmark::State& state) {
  const auto ks = static_cast<aes::KeySize>(state.range(0));
  std::vector<std::uint8_t> key(aes::keyBytes(ks), 0x5a);
  for (auto _ : state) {
    benchmark::DoNotOptimize(aes::expandKey(key, ks));
  }
}
BENCHMARK(BM_KeyExpansion)
    ->Arg(static_cast<int>(aes::KeySize::Aes128))
    ->Arg(static_cast<int>(aes::KeySize::Aes256));

void BM_PipelineAdvance(benchmark::State& state) {
  Rng rng{4};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  accel::RoundKeyRam ram;
  ram.store(0, aes::expandKey(key, aes::KeySize::Aes128),
            lattice::Conf::bottom(), lattice::Label::publicTrusted());
  accel::AesPipeline p{10, ram};
  accel::StageSlot s;
  s.valid = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.advance(s));
  }
  // Each advance is one simulated 2.5 ns cycle of the 30-stage pipeline.
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * 16);
}
BENCHMARK(BM_PipelineAdvance);

}  // namespace

int main(int argc, char** argv) {
  printFig1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
