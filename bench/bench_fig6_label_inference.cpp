// Reproduces Fig. 6: the static IFC analysis deduces labels from the
// implementation and flags two errors in a leaky AES engine — the `valid`
// signal whose timing depends on the key, and the ciphertext released to a
// public output without declassification. The fixed design (constant-time
// control + explicit nonmalleable declassification) verifies clean, and the
// master-key scenarios of Section 3.2.2 behave per the paper.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ifc/checker.h"
#include "rtl/verif_models.h"

namespace {

using namespace aesifc;

void runScenario(const char* title, hdl::Module m, bool expect_ok) {
  const auto report = ifc::check(m);
  std::printf("--- %s [%s]\n", title, m.name().c_str());
  std::printf("    expected: %s   got: %s\n", expect_ok ? "PASS" : "REJECT",
              report.ok() ? "PASS" : "REJECT");
  for (const auto& v : report.violations) {
    std::printf("    %s\n", v.toString().c_str());
  }
}

void printFig6() {
  std::printf("==============================================================\n");
  std::printf("Reproduction of Fig. 6: label errors found by IFC analysis\n");
  std::printf("==============================================================\n");
  runScenario("key-dependent timing on `valid` (leaky engine)",
              rtl::buildAesControl(true), false);
  runScenario("constant-time control (fixed engine)",
              rtl::buildAesControl(false), true);
  runScenario("ciphertext to public port without declassification",
              rtl::buildCiphertextRelease(rtl::ReleaseScenario::NoDeclass),
              false);
  runScenario("ciphertext declassified by its owner (authorized key)",
              rtl::buildCiphertextRelease(rtl::ReleaseScenario::UserKey), true);
  runScenario("master-key ciphertext declassified by a regular user (3.2.2)",
              rtl::buildCiphertextRelease(rtl::ReleaseScenario::MasterKeyUser),
              false);
  runScenario(
      "master-key ciphertext declassified by the supervisor (3.2.2)",
      rtl::buildCiphertextRelease(rtl::ReleaseScenario::MasterKeySupervisor),
      true);
  std::printf("\n");
}

void BM_CheckLeakyControl(benchmark::State& state) {
  auto m = rtl::buildAesControl(true);
  for (auto _ : state) benchmark::DoNotOptimize(ifc::check(m));
}
BENCHMARK(BM_CheckLeakyControl);

void BM_CheckCiphertextRelease(benchmark::State& state) {
  auto m = rtl::buildCiphertextRelease(rtl::ReleaseScenario::UserKey);
  for (auto _ : state) benchmark::DoNotOptimize(ifc::check(m));
}
BENCHMARK(BM_CheckCiphertextRelease);

}  // namespace

int main(int argc, char** argv) {
  printFig6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
