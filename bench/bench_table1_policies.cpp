// Reproduces Table 1: the six security requirements of a crypto accelerator
// expressed as information-flow policies, and — going beyond the static
// table — their *enforcement status* measured on the behavioral accelerator
// in both modes (each requirement is exercised by a concrete attack driver).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "ifc/policy.h"
#include "soc/policy_engine.h"

namespace {

using namespace aesifc;

void printTables() {
  std::printf("==============================================================\n");
  std::printf("Reproduction of Table 1 (DAC'19 AES IFC case study)\n");
  std::printf("==============================================================\n");
  std::printf("%s\n", ifc::renderTable1().c_str());
  std::printf("%s\n", soc::renderPolicyMatrix().c_str());

  std::printf("Evidence (protected design):\n");
  for (const auto& v : soc::evaluatePolicies(accel::SecurityMode::Protected)) {
    std::printf("  %d. %s\n", v.policy_id, v.evidence.c_str());
  }
  std::printf("\nEvidence (baseline design):\n");
  for (const auto& v : soc::evaluatePolicies(accel::SecurityMode::Baseline)) {
    std::printf("  %d. %s\n", v.policy_id, v.evidence.c_str());
  }
  std::printf("\n");
}

void BM_EvaluatePoliciesProtected(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        soc::evaluatePolicies(accel::SecurityMode::Protected));
  }
}
BENCHMARK(BM_EvaluatePoliciesProtected)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printTables();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
