// Ablation studies of the protected design's choices (the "design
// decisions" DESIGN.md calls out):
//   A. stall meet rule: stage-only (the paper's literal Fig. 8) vs. our
//      input-aware strengthening — the stage-only rule re-opens an
//      acceptance-delay covert channel;
//   B. runtime tag width (4 / 8 / 16 bits) vs. area overhead;
//   C. overflow output buffer depth vs. dropped blocks under hostile
//      receiver behavior;
//   D. cipher modes on a pipelined engine: ECB/CTR ride the pipeline, CBC
//      encryption serializes on the 30-cycle latency.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "accel/driver.h"
#include "area/model.h"
#include "common/rng.h"
#include "soc/attacks.h"

namespace {

using namespace aesifc;
using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;

void ablationA() {
  std::printf("--- A. Stall meet rule vs acceptance-delay channel\n");
  std::printf("%-24s %-10s %-10s %-14s %-14s\n", "meet rule", "MI(bits)",
              "accuracy", "granted stalls", "denied stalls");
  for (const bool inputs : {false, true}) {
    const auto r = soc::runAcceptanceDelayAttack(inputs);
    std::printf("%-24s %-10.3f %-10.2f %-14llu %-14llu\n",
                inputs ? "stages+waiting inputs" : "stages only (paper)",
                r.mi_bits, r.accuracy,
                static_cast<unsigned long long>(r.stalled_cycles),
                static_cast<unsigned long long>(r.denied_stalls));
  }
  std::printf("\n");
}

void ablationB() {
  std::printf("--- B. Tag width vs area overhead (model)\n");
  std::printf("%-10s %-12s %-12s %-12s\n", "tag bits", "LUT delta",
              "FF delta", "LUT overhead");
  area::DesignParams base;
  const auto b = area::estimateAccelerator(base);
  for (const unsigned bits : {4u, 8u, 16u}) {
    area::DesignParams p;
    p.protected_mode = true;
    p.tag_bits = bits;
    const auto e = area::estimateAccelerator(p);
    std::printf("%-10u %-12llu %-12llu %+.1f%%\n", bits,
                static_cast<unsigned long long>(e.total.luts - b.total.luts),
                static_cast<unsigned long long>(e.total.ffs - b.total.ffs),
                100.0 * (static_cast<double>(e.total.luts) - b.total.luts) /
                    b.total.luts);
  }
  std::printf("(the paper's prototype uses 8-bit tags: 4 conf + 4 integ)\n\n");
}

void ablationC() {
  std::printf("--- C. Overflow buffer depth vs dropped blocks\n");
  std::printf("%-10s %-12s %-12s %-12s\n", "depth", "buffered", "dropped",
              "denied");
  for (const unsigned depth : {2u, 8u, 32u, 128u}) {
    AcceleratorConfig cfg;
    cfg.mode = SecurityMode::Protected;
    cfg.out_buffer_depth = depth;
    AesAccelerator acc{cfg};
    const unsigned sup = acc.addUser(lattice::Principal::supervisor());
    const unsigned alice = acc.addUser(lattice::Principal::user("alice", 1));
    const unsigned eve = acc.addUser(lattice::Principal::user("eve", 2));
    (void)sup;
    Rng rng{99};
    std::vector<std::uint8_t> k1(16), k2(16);
    for (auto& b : k1) b = static_cast<std::uint8_t>(rng.next());
    for (auto& b : k2) b = static_cast<std::uint8_t>(rng.next());
    accel::loadKey128(acc, alice, 1, 2, k1, lattice::Conf::category(1));
    accel::loadKey128(acc, eve, 2, 0, k2, lattice::Conf::category(2));
    acc.setReceiverReady(alice, false);  // hostile receiver, never ready
    std::uint64_t id = 1;
    for (unsigned i = 0; i < 600; ++i) {
      if (acc.pendingInputs(alice) < 2)
        acc.submit({id++, alice, 1, false, {}});
      if (acc.pendingInputs(eve) < 2)
        acc.submit({id++, eve, 2, false, {}});
      acc.tick();
      while (acc.fetchOutput(eve)) {
      }
    }
    std::printf("%-10u %-12llu %-12llu %-12llu\n", depth,
                static_cast<unsigned long long>(acc.stats().buffered),
                static_cast<unsigned long long>(acc.stats().dropped),
                static_cast<unsigned long long>(acc.stats().denied_stalls));
  }
  std::printf("(Table 2's +2 BRAM buys enough depth that legitimate stall\n"
              " traffic never drops; only a never-ready receiver loses data)\n\n");
}

void ablationD() {
  std::printf("--- D. Cipher modes on the pipelined engine (64-block message)\n");
  std::printf("%-10s %-14s %-14s\n", "mode", "device cycles", "cycles/block");
  AcceleratorConfig cfg;
  AesAccelerator acc{cfg};
  const unsigned u = acc.addUser(lattice::Principal::user("alice", 1));
  Rng rng{42};
  std::vector<std::uint8_t> key(16);
  for (auto& b : key) b = static_cast<std::uint8_t>(rng.next());
  accel::loadKey128(acc, u, 1, 0, key, lattice::Conf::category(1));

  aes::Bytes msg(16 * 64);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next());
  aes::Iv iv{};

  struct Row {
    const char* name;
    std::uint64_t cycles;
  };
  std::vector<Row> rows;
  {
    accel::AccelSession s{acc, u, 1};
    s.ecbEncrypt(msg);
    rows.push_back({"ECB", s.cyclesUsed()});
  }
  {
    accel::AccelSession s{acc, u, 1};
    s.ctrCrypt(msg, iv);
    rows.push_back({"CTR", s.cyclesUsed()});
  }
  {
    accel::AccelSession s{acc, u, 1};
    s.cbcDecrypt(msg, iv);
    rows.push_back({"CBC-dec", s.cyclesUsed()});
  }
  {
    accel::AccelSession s{acc, u, 1};
    s.cbcEncrypt(msg, iv);
    rows.push_back({"CBC-enc", s.cyclesUsed()});
  }
  for (const auto& r : rows) {
    std::printf("%-10s %-14llu %-14.1f\n", r.name,
                static_cast<unsigned long long>(r.cycles), r.cycles / 64.0);
  }
  std::printf("(parallel modes approach 1 block/cycle; chained CBC\n"
              " encryption pays the full 30-cycle latency per block)\n\n");
}

void BM_AcceptanceProbe(benchmark::State& state) {
  const bool inputs = state.range(0) != 0;
  soc::TimingChannelParams p;
  p.secret_bits = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(soc::runAcceptanceDelayAttack(inputs, p));
  }
}
BENCHMARK(BM_AcceptanceProbe)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  std::printf("==============================================================\n");
  std::printf("Ablation benches (design-choice studies beyond the paper)\n");
  std::printf("==============================================================\n");
  ablationA();
  ablationB();
  ablationC();
  ablationD();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
