// Reproduces Table 2: area and performance of the FPGA prototypes.
// Paper: baseline 13,275 LUTs / 14,645 FFs / 40 BRAMs / 400 MHz;
// protected +5.6% / +6.6% / +10% / +0%.
// Our numbers come from the structural resource model in src/area, whose
// baseline is calibrated to the paper and whose protected deltas fall out
// of the added tag/checker/buffer structures.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "area/model.h"
#include "rtl/aes_ir.h"

namespace {

using namespace aesifc;

void printTable2() {
  std::printf("==============================================================\n");
  std::printf("Reproduction of Table 2 (DAC'19 AES IFC case study)\n");
  std::printf("==============================================================\n");
  std::printf("%s\n", area::renderTable2().c_str());

  // Itemized protection overhead.
  area::DesignParams prot;
  prot.protected_mode = true;
  const auto bom = area::estimateAccelerator(prot);
  std::printf("Protected-design bill of materials (model):\n");
  std::printf("  %-42s %8s %8s %6s\n", "component", "LUTs", "FFs", "BRAM");
  for (const auto& item : bom.items) {
    std::printf("  %-42s %8llu %8llu %6llu\n", item.name.c_str(),
                static_cast<unsigned long long>(item.res.luts),
                static_cast<unsigned long long>(item.res.ffs),
                static_cast<unsigned long long>(item.res.brams));
  }
  std::printf("  %-42s %8llu %8llu %6llu\n", "TOTAL",
              static_cast<unsigned long long>(bom.total.luts),
              static_cast<unsigned long long>(bom.total.ffs),
              static_cast<unsigned long long>(bom.total.brams));

  const auto netlist = area::estimateModule(*[] {
    static auto m = rtl::buildAesEncrypt128(nullptr);
    return &m;
  }());
  std::printf(
      "\nCross-check: netlist estimator on the unrolled AES-128 IR datapath "
      "gives %llu LUTs (datapath-only; compare the model's S-box + "
      "MixColumns + AddRoundKey rows).\n\n",
      static_cast<unsigned long long>(netlist.luts));

  std::printf("%s\n", area::renderEnforcementComparison().c_str());
}

void BM_EstimateBaseline(benchmark::State& state) {
  area::DesignParams p;
  for (auto _ : state) {
    benchmark::DoNotOptimize(area::estimateAccelerator(p));
  }
}
BENCHMARK(BM_EstimateBaseline);

void BM_EstimateProtected(benchmark::State& state) {
  area::DesignParams p;
  p.protected_mode = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(area::estimateAccelerator(p));
  }
}
BENCHMARK(BM_EstimateProtected);

void BM_NetlistEstimateAesIr(benchmark::State& state) {
  auto m = rtl::buildAesEncrypt128(nullptr);
  for (auto _ : state) {
    benchmark::DoNotOptimize(area::estimateModule(m));
  }
}
BENCHMARK(BM_NetlistEstimateAesIr);

}  // namespace

int main(int argc, char** argv) {
  printTable2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
