// Reproduces the attack scenarios of Sections 2.1 and 3.1-3.2 end to end:
// scratchpad overflow (Fig. 5), debug-port key theft ([10]), key misuse /
// master-key declassification (3.2.2), and config tampering (3.2.4) — each
// against the baseline (succeeds) and the protected design (blocked).

#include <benchmark/benchmark.h>

#include <cstdio>

#include "soc/attacks.h"

namespace {

using namespace aesifc;
using accel::SecurityMode;

const char* yn(bool b) { return b ? "yes" : "no"; }

void printAttacks() {
  std::printf("==============================================================\n");
  std::printf("Attack gallery: baseline vs protected\n");
  std::printf("==============================================================\n");

  for (const auto mode : {SecurityMode::Baseline, SecurityMode::Protected}) {
    const char* name =
        mode == SecurityMode::Baseline ? "BASELINE" : "PROTECTED";
    std::printf("\n[%s]\n", name);

    const auto ov = soc::runScratchpadOverflow(mode);
    std::printf(
        "  Fig.5 scratchpad overflow : overflow write landed=%s, Alice key "
        "corrupted=%s, blocked events=%zu\n",
        yn(ov.overflow_write_succeeded), yn(ov.alice_key_corrupted),
        ov.blocked_events);

    const auto dbg = soc::runDebugPortAttack(mode);
    std::printf(
        "  debug-port key theft      : Eve enabled debug=%s, full key "
        "recovered=%s, supervisor read ok=%s\n",
        yn(dbg.eve_enabled_debug), yn(dbg.key_recovered),
        yn(dbg.supervisor_read_ok));

    const auto mis = soc::runKeyMisuseAttack(mode);
    std::printf(
        "  key misuse (Sec 3.2.2)    : master-key output released=%s, "
        "Alice-key output released=%s, own key ok=%s, supervisor master "
        "ok=%s, declass rejected=%zu\n",
        yn(mis.master_key_output_released), yn(mis.alice_key_output_released),
        yn(mis.own_key_ok), yn(mis.supervisor_master_ok),
        mis.declass_rejected);

    const auto cfg = soc::runConfigTamper(mode);
    std::printf(
        "  config tamper (Sec 3.2.4) : Eve write landed=%s, supervisor write "
        "landed=%s, public read ok=%s\n",
        yn(cfg.eve_write_landed), yn(cfg.supervisor_write_landed),
        yn(cfg.eve_read_ok));

    const auto dma = soc::runDmaTheftAttack(mode);
    std::printf(
        "  DMA theft (Fig. 2)        : Alice plaintext stolen=%s, src read "
        "blocked=%s, dst write blocked=%s, legit DMA ok=%s\n",
        yn(dma.alice_plaintext_stolen), yn(dma.src_read_blocked),
        yn(dma.dst_write_blocked), yn(dma.legit_dma_ok));
  }
  std::printf("\n");
}

void BM_ScratchpadOverflow(benchmark::State& state) {
  const auto mode = state.range(0) ? SecurityMode::Protected
                                   : SecurityMode::Baseline;
  for (auto _ : state) {
    benchmark::DoNotOptimize(soc::runScratchpadOverflow(mode));
  }
}
BENCHMARK(BM_ScratchpadOverflow)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_KeyMisuse(benchmark::State& state) {
  const auto mode = state.range(0) ? SecurityMode::Protected
                                   : SecurityMode::Baseline;
  for (auto _ : state) {
    benchmark::DoNotOptimize(soc::runKeyMisuseAttack(mode));
  }
}
BENCHMARK(BM_KeyMisuse)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printAttacks();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
