// Reproduces the Section 4 performance claims: the 30-stage pipeline takes
// one block per cycle (51.2 Gbps at the prototype's 400 MHz), protection
// costs no cycles, and fine-grained sharing beats the coarse-grained
// (drain-between-users) policy the paper's introduction argues against.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "accel/driver.h"
#include "soc/workload.h"

namespace {

using namespace aesifc;
using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;

soc::WorkloadResult run(SecurityMode mode, bool coarse, unsigned users,
                        unsigned blocks) {
  AcceleratorConfig cfg;
  cfg.mode = mode;
  cfg.coarse_grained = coarse;
  AesAccelerator acc{cfg};
  const auto setup = soc::setupTenants(acc, users);
  soc::WorkloadConfig w;
  w.blocks_per_user = blocks;
  return soc::runSharedWorkload(acc, setup, w);
}

void printThroughput() {
  std::printf("==============================================================\n");
  std::printf("Reproduction of Sec. 4 performance (throughput & latency)\n");
  std::printf("==============================================================\n");
  std::printf("Paper: 1 block/cycle, 30-cycle latency, 51.2 Gbps @ 400 MHz\n\n");
  std::printf("%-10s %-9s %-7s %-9s %-12s %-12s %-10s %-9s\n", "design",
              "sharing", "users", "blocks", "cycles", "blocks/cyc",
              "Gbps@400", "lat(avg)");

  struct Row {
    SecurityMode mode;
    bool coarse;
    unsigned users;
  };
  const Row rows[] = {
      {SecurityMode::Baseline, false, 4},  {SecurityMode::Protected, false, 4},
      {SecurityMode::Baseline, true, 4},   {SecurityMode::Protected, true, 4},
      {SecurityMode::Protected, false, 1}, {SecurityMode::Protected, false, 2},
  };
  for (const auto& row : rows) {
    const unsigned blocks = 512;
    const auto r = run(row.mode, row.coarse, row.users, blocks);
    const double gbps = r.blocks_per_cycle * 128.0 * 400e6 / 1e9;
    std::printf("%-10s %-9s %-7u %-9llu %-12llu %-12.3f %-10.1f %-9.1f%s\n",
                row.mode == SecurityMode::Baseline ? "baseline" : "protected",
                row.coarse ? "coarse" : "fine", row.users,
                static_cast<unsigned long long>(r.blocks_completed),
                static_cast<unsigned long long>(r.cycles), r.blocks_per_cycle,
                gbps, r.latency.mean, r.all_correct ? "" : "  [MISMATCH!]");
  }
  std::printf(
      "\nFine-grained sharing sustains ~1 block/cycle => ~51.2 Gbps at the\n"
      "prototype clock; coarse-grained sharing pays a 30-cycle drain per\n"
      "user switch. Protection costs no cycles (same rows).\n\n");

  // Fig. 1 at system level: one AES-256-capable engine serving mixed key
  // sizes concurrently (shorter schedules pass through the spare stages).
  AcceleratorConfig cfg;
  cfg.max_rounds = 14;
  AesAccelerator acc{cfg};
  const unsigned sup = acc.addUser(lattice::Principal::supervisor());
  (void)sup;
  const unsigned a = acc.addUser(lattice::Principal::user("a128", 1));
  const unsigned b = acc.addUser(lattice::Principal::user("b256", 2));
  std::vector<std::uint8_t> k128(16, 0x11), k256(32, 0x22);
  accel::loadKeyBytes(acc, a, 1, 0, k128, aes::KeySize::Aes128,
                      lattice::Conf::category(1));
  accel::loadKeyBytes(acc, b, 2, 2, k256, aes::KeySize::Aes256,
                      lattice::Conf::category(2));
  std::uint64_t id = 1, done = 0;
  const std::uint64_t t0 = acc.cycle();
  for (unsigned i = 0; i < 512; ++i) {
    acc.submit({id++, i % 2 ? b : a, i % 2 ? 2u : 1u, false, {}});
    acc.tick();
    while (acc.fetchOutput(a)) ++done;
    while (acc.fetchOutput(b)) ++done;
  }
  acc.run(60);
  while (acc.fetchOutput(a)) ++done;
  while (acc.fetchOutput(b)) ++done;
  const double bpc = static_cast<double>(done) / (acc.cycle() - t0);
  std::printf("Mixed AES-128 + AES-256 tenants on one 42-stage engine:\n"
              "  %llu blocks in %llu cycles = %.3f blocks/cycle "
              "(uniform 42-cycle latency)\n\n",
              static_cast<unsigned long long>(done),
              static_cast<unsigned long long>(acc.cycle() - t0), bpc);
}

void BM_ProtectedFineGrained(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run(SecurityMode::Protected, false,
            static_cast<unsigned>(state.range(0)), 128));
  }
}
BENCHMARK(BM_ProtectedFineGrained)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_BaselineFineGrained(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(SecurityMode::Baseline, false, 4, 128));
  }
}
BENCHMARK(BM_BaselineFineGrained)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printThroughput();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
