// Reproduces the Section 4 performance claims: the 30-stage pipeline takes
// one block per cycle (51.2 Gbps at the prototype's 400 MHz), protection
// costs no cycles, and fine-grained sharing beats the coarse-grained
// (drain-between-users) policy the paper's introduction argues against.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "accel/driver.h"
#include "soc/metrics.h"
#include "soc/pool.h"
#include "soc/workload.h"

namespace {

using namespace aesifc;
using accel::AcceleratorConfig;
using accel::AesAccelerator;
using accel::SecurityMode;

soc::WorkloadResult run(SecurityMode mode, bool coarse, unsigned users,
                        unsigned blocks) {
  AcceleratorConfig cfg;
  cfg.mode = mode;
  cfg.coarse_grained = coarse;
  AesAccelerator acc{cfg};
  const auto setup = soc::setupTenants(acc, users);
  soc::WorkloadConfig w;
  w.blocks_per_user = blocks;
  return soc::runSharedWorkload(acc, setup, w);
}

void printThroughput() {
  std::printf("==============================================================\n");
  std::printf("Reproduction of Sec. 4 performance (throughput & latency)\n");
  std::printf("==============================================================\n");
  std::printf("Paper: 1 block/cycle, 30-cycle latency, 51.2 Gbps @ 400 MHz\n\n");
  std::printf("%-10s %-9s %-7s %-9s %-12s %-12s %-10s %-9s\n", "design",
              "sharing", "users", "blocks", "cycles", "blocks/cyc",
              "Gbps@400", "lat(avg)");

  struct Row {
    SecurityMode mode;
    bool coarse;
    unsigned users;
  };
  const Row rows[] = {
      {SecurityMode::Baseline, false, 4},  {SecurityMode::Protected, false, 4},
      {SecurityMode::Baseline, true, 4},   {SecurityMode::Protected, true, 4},
      {SecurityMode::Protected, false, 1}, {SecurityMode::Protected, false, 2},
  };
  for (const auto& row : rows) {
    const unsigned blocks = 512;
    const auto r = run(row.mode, row.coarse, row.users, blocks);
    const double gbps = r.blocks_per_cycle * 128.0 * 400e6 / 1e9;
    std::printf("%-10s %-9s %-7u %-9llu %-12llu %-12.3f %-10.1f %-9.1f%s\n",
                row.mode == SecurityMode::Baseline ? "baseline" : "protected",
                row.coarse ? "coarse" : "fine", row.users,
                static_cast<unsigned long long>(r.blocks_completed),
                static_cast<unsigned long long>(r.cycles), r.blocks_per_cycle,
                gbps, r.latency.mean, r.all_correct ? "" : "  [MISMATCH!]");
  }
  std::printf(
      "\nFine-grained sharing sustains ~1 block/cycle => ~51.2 Gbps at the\n"
      "prototype clock; coarse-grained sharing pays a 30-cycle drain per\n"
      "user switch. Protection costs no cycles (same rows).\n\n");

  // Fig. 1 at system level: one AES-256-capable engine serving mixed key
  // sizes concurrently (shorter schedules pass through the spare stages).
  AcceleratorConfig cfg;
  cfg.max_rounds = 14;
  AesAccelerator acc{cfg};
  const unsigned sup = acc.addUser(lattice::Principal::supervisor());
  (void)sup;
  const unsigned a = acc.addUser(lattice::Principal::user("a128", 1));
  const unsigned b = acc.addUser(lattice::Principal::user("b256", 2));
  std::vector<std::uint8_t> k128(16, 0x11), k256(32, 0x22);
  accel::loadKeyBytes(acc, a, 1, 0, k128, aes::KeySize::Aes128,
                      lattice::Conf::category(1));
  accel::loadKeyBytes(acc, b, 2, 2, k256, aes::KeySize::Aes256,
                      lattice::Conf::category(2));
  std::uint64_t id = 1, done = 0;
  const std::uint64_t t0 = acc.cycle();
  for (unsigned i = 0; i < 512; ++i) {
    acc.submit({id++, i % 2 ? b : a, i % 2 ? 2u : 1u, false, {}});
    acc.tick();
    while (acc.fetchOutput(a)) ++done;
    while (acc.fetchOutput(b)) ++done;
  }
  acc.run(60);
  while (acc.fetchOutput(a)) ++done;
  while (acc.fetchOutput(b)) ++done;
  const double bpc = static_cast<double>(done) / (acc.cycle() - t0);
  std::printf("Mixed AES-128 + AES-256 tenants on one 42-stage engine:\n"
              "  %llu blocks in %llu cycles = %.3f blocks/cycle "
              "(uniform 42-cycle latency)\n\n",
              static_cast<unsigned long long>(done),
              static_cast<unsigned long long>(acc.cycle() - t0), bpc);
}

// --- Engine-pool throughput matrix -----------------------------------------------
//
// The committed baseline (bench/BENCH_throughput.json): shards x batch_size
// sweep over the sharded EnginePool, closed-loop with a fixed tenant set.
// Two throughput views per cell: blocks per wall-second (host simulation
// speed) and blocks per device cycle of the slowest shard (what real
// silicon would see — shards are independent hardware and run in parallel).

unsigned envOr(const char* name, unsigned fallback) {
  const char* v = std::getenv(name);
  if (!v || !*v) return fallback;
  const unsigned long n = std::strtoul(v, nullptr, 10);
  return n == 0 ? fallback : static_cast<unsigned>(n);
}

bool smokeMode() {
  const char* v = std::getenv("AESIFC_BENCH_SMOKE");
  return v && *v && std::string{v} != "0";
}

struct PoolRunResult {
  std::uint64_t blocks = 0;
  std::uint64_t device_cycles = 0;  // slowest shard's cycle counter
  double wall_seconds = 0.0;
  soc::LatencyStats latency;  // submit->complete, device cycles
  soc::ServiceStats stats;
};

PoolRunResult runPool(unsigned shards, unsigned batch, unsigned tenants,
                      unsigned blocks_per_tenant) {
  soc::PoolConfig cfg;
  cfg.shards = shards;
  cfg.service.batch_size = batch;
  cfg.service.quota_per_round = batch < 16 ? 16 : batch;
  cfg.service.global_high_watermark = 1u << 20;
  soc::EnginePool pool{cfg};

  std::vector<unsigned> ids;
  for (unsigned t = 0; t < tenants; ++t) {
    soc::PoolTenantSpec spec;
    spec.name = "tenant-" + std::to_string(t);
    spec.category = t + 1;
    spec.key.assign(16, 0);
    for (unsigned i = 0; i < 16; ++i)
      spec.key[i] = static_cast<std::uint8_t>(0x40 + 13 * t + i);
    spec.queue_depth = 64;
    const soc::PlaceResult placed = pool.addTenant(spec);
    if (!placed.placed) throw std::runtime_error("bench: pool refused tenant");
    ids.push_back(placed.tenant);
  }

  // Closed loop in waves: top every tenant's queue up, drain the pool to
  // idle, collect completions — so queues stay deep enough for batching to
  // engage but latency still covers the queue wait, not just the pipe.
  std::vector<unsigned> submitted(tenants, 0);
  std::uint64_t done = 0;
  std::vector<std::uint64_t> lat;
  lat.reserve(static_cast<std::size_t>(tenants) * blocks_per_tenant);
  PoolRunResult r;
  const auto t0 = std::chrono::steady_clock::now();
  while (done < static_cast<std::uint64_t>(tenants) * blocks_per_tenant) {
    for (unsigned t = 0; t < tenants; ++t) {
      while (submitted[t] < blocks_per_tenant) {
        aes::Block b{};
        for (unsigned i = 0; i < 16; ++i)
          b[i] = static_cast<std::uint8_t>(submitted[t] + 7 * i + t);
        if (!pool.submit(ids[t], b).admitted) break;  // queue full: next wave
        ++submitted[t];
      }
    }
    pool.runUntilIdle(1u << 24);
    for (unsigned t = 0; t < tenants; ++t) {
      while (auto c = pool.fetch(ids[t])) {
        ++done;
        lat.push_back(c->complete_cycle - c->submit_cycle);
      }
    }
  }
  r.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  r.blocks = done;
  r.device_cycles = pool.maxShardCycle();
  r.latency = soc::latencyStats(lat);
  r.stats = pool.aggregateStats();
  return r;
}

void printPoolThroughput() {
  const unsigned blocks = envOr("AESIFC_BENCH_BLOCKS", smokeMode() ? 8 : 256);
  const unsigned tenants = 6;  // fits a single shard (7 slots) for the 1-shard cell
  std::printf("==============================================================\n");
  std::printf("Engine pool: shards x batch_size throughput matrix\n");
  std::printf("==============================================================\n");
  std::printf("%u tenants, %u blocks each, closed loop, sticky-hash placement\n\n",
              tenants, blocks);
  std::printf("%-7s %-6s %-9s %-11s %-12s %-12s %-8s %-8s %-8s\n", "shards",
              "batch", "blocks", "dev-cycles", "blk/dev-cyc", "blk/sec",
              "p50", "p95", "p99");

  double base_bps = 0.0;  // 1 shard, batch 1 — the unsharded unbatched floor
  for (const unsigned shards : {1u, 2u, 4u, 8u}) {
    for (const unsigned batch : {1u, 4u, 16u, 64u}) {
      const auto r = runPool(shards, batch, tenants, blocks);
      const double bpc = r.device_cycles
                             ? static_cast<double>(r.blocks) /
                                   static_cast<double>(r.device_cycles)
                             : 0.0;
      const double bps =
          r.wall_seconds > 0.0
              ? static_cast<double>(r.blocks) / r.wall_seconds
              : 0.0;
      if (shards == 1 && batch == 1) base_bps = bps;
      std::printf("%-7u %-6u %-9llu %-11llu %-12.3f %-12.0f %-8.0f %-8.0f %-8.0f\n",
                  shards, batch, static_cast<unsigned long long>(r.blocks),
                  static_cast<unsigned long long>(r.device_cycles), bpc, bps,
                  r.latency.p50, r.latency.p95, r.latency.p99);
      std::printf(
          "JSON {\"bench\":\"throughput_pool\",\"shards\":%u,\"batch\":%u,"
          "\"tenants\":%u,\"blocks\":%llu,\"device_cycles\":%llu,"
          "\"blocks_per_device_cycle\":%.4f,\"blocks_per_sec\":%.1f,"
          "\"wall_seconds\":%.4f,\"speedup_vs_1shard_batch1\":%.2f,"
          "\"latency\":%s,\"stats\":%s}\n",
          shards, batch, tenants, static_cast<unsigned long long>(r.blocks),
          static_cast<unsigned long long>(r.device_cycles), bpc, bps,
          r.wall_seconds, base_bps > 0.0 ? bps / base_bps : 0.0,
          r.latency.toJson().c_str(), r.stats.toJson().c_str());
    }
  }
  std::printf(
      "\nBatching fills the 30-stage pipe (K blocks in ~K+30 shard cycles\n"
      "instead of K x 31); sharding multiplies that by independent engines\n"
      "whose device cycles run concurrently in silicon.\n\n");
}

void BM_ProtectedFineGrained(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        run(SecurityMode::Protected, false,
            static_cast<unsigned>(state.range(0)), 128));
  }
}
BENCHMARK(BM_ProtectedFineGrained)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_BaselineFineGrained(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(run(SecurityMode::Baseline, false, 4, 128));
  }
}
BENCHMARK(BM_BaselineFineGrained)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printThroughput();
  printPoolThroughput();
  // AESIFC_BENCH_SMOKE: CI keep-alive mode — the tables above already ran
  // (at tiny scale); skip the Google Benchmark timing loops entirely.
  if (smokeMode()) return 0;
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
