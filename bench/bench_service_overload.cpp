// Service-overload bench: the multi-tenant front end under three regimes —
// a healthy device, admission-control overload (queues past the watermark),
// and a fault storm that trips the circuit breaker into software fallback.
// Reports per-phase throughput, tenant fairness (min/max completed), and
// the admission/shedding counters, as one JSON record per phase.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "soc/fault_injector.h"
#include "soc/service.h"

namespace {

using namespace aesifc;
using accel::AcceleratorConfig;
using accel::AesAccelerator;
using lattice::Conf;
using lattice::Principal;
using soc::AccelService;
using soc::FaultCampaignConfig;
using soc::FaultInjector;
using soc::HealthState;
using soc::ServiceConfig;
using soc::TenantSpec;

constexpr unsigned kTenants = 4;

struct Harness {
  AesAccelerator acc;
  ServiceConfig cfg;
  AccelService svc;
  std::vector<unsigned> users;
  Rng traffic{42};

  Harness()
      : acc{[] {
          AcceleratorConfig a;
          a.out_buffer_depth = 16;
          a.event_log_cap = 512;
          return a;
        }()},
        cfg{[] {
          ServiceConfig c;
          c.global_high_watermark = 48;
          c.quota_per_round = 2;
          c.max_requeues = 2;
          c.health.window_cycles = 512;
          c.health.quarantine_threshold = 0.40;
          c.health.recovery_windows = 1;
          c.health.quarantine_residency_cycles = 1024;
          c.healthy_opts = {.timeout_cycles = 400, .max_retries = 2,
                            .backoff_cycles = 8};
          return c;
        }()},
        svc{acc, cfg} {
    acc.addUser(Principal::supervisor());
    for (unsigned t = 0; t < kTenants; ++t) {
      const unsigned u =
          acc.addUser(Principal::user("t" + std::to_string(t), t + 1));
      users.push_back(u);
      TenantSpec spec;
      spec.user = u;
      spec.key_slot = t + 1;
      spec.cell_base = 2 * t;
      spec.key.resize(16);
      for (unsigned i = 0; i < 16; ++i)
        spec.key[i] = static_cast<std::uint8_t>(0x40 + 29 * t + i);
      spec.key_conf = Conf::category(t + 1);
      spec.queue_depth = 6;
      svc.addTenant(spec);
    }
  }

  void offer() {
    for (unsigned t = 0; t < kTenants; ++t) {
      if (svc.queued(t) >= 5) continue;
      aes::Block pt;
      const auto bits = traffic.bits(128).toBytes();
      for (unsigned i = 0; i < 16; ++i) pt[i] = bits[i];
      (void)svc.submit(t, pt);
    }
  }

  // Drive `rounds` pump rounds; returns blocks resolved.
  std::uint64_t drive(unsigned rounds) {
    std::uint64_t resolved = 0;
    for (unsigned r = 0; r < rounds; ++r) {
      offer();
      resolved += svc.pump();
      for (unsigned t = 0; t < kTenants; ++t)
        while (svc.fetch(t)) {
        }
    }
    return resolved;
  }
};

struct PhaseRow {
  const char* phase;
  std::uint64_t resolved;
  std::uint64_t cycles;
  std::uint64_t min_ok;
  std::uint64_t max_ok;
  std::string health;
};

void printPhase(const PhaseRow& r, const AccelService& svc) {
  const double bpc =
      r.cycles ? static_cast<double>(r.resolved) / r.cycles : 0.0;
  std::printf("%-10s %-9llu %-9llu %-8.4f %-7llu %-7llu %-12s\n", r.phase,
              static_cast<unsigned long long>(r.resolved),
              static_cast<unsigned long long>(r.cycles), bpc,
              static_cast<unsigned long long>(r.min_ok),
              static_cast<unsigned long long>(r.max_ok), r.health.c_str());
  std::printf(
      "JSON {\"bench\":\"service_overload\",\"phase\":\"%s\","
      "\"resolved\":%llu,\"cycles\":%llu,\"blocks_per_cycle\":%.4f,"
      "\"min_tenant_ok\":%llu,\"max_tenant_ok\":%llu,\"health\":\"%s\","
      "\"service\":%s}\n",
      r.phase, static_cast<unsigned long long>(r.resolved),
      static_cast<unsigned long long>(r.cycles), bpc,
      static_cast<unsigned long long>(r.min_ok),
      static_cast<unsigned long long>(r.max_ok), r.health.c_str(),
      svc.stats().toJson().c_str());
}

void printOverloadStudy() {
  std::printf("==============================================================\n");
  std::printf("Multi-tenant service: overload, breaker trip, recovery\n");
  std::printf("==============================================================\n");
  std::printf("%-10s %-9s %-9s %-8s %-7s %-7s %-12s\n", "phase", "resolved",
              "cycles", "blk/cyc", "min-ok", "max-ok", "health");

  Harness h;
  auto minmax = [&] {
    std::uint64_t lo = h.svc.completedOf(0), hi = lo;
    for (unsigned t = 0; t < kTenants; ++t) {
      lo = std::min(lo, h.svc.completedOf(t));
      hi = std::max(hi, h.svc.completedOf(t));
    }
    return std::pair{lo, hi};
  };

  // Phase 1: healthy hardware under steady overload.
  std::uint64_t c0 = h.acc.cycle();
  std::uint64_t resolved = h.drive(400);
  auto [lo1, hi1] = minmax();
  printPhase({"healthy", resolved, h.acc.cycle() - c0, lo1, hi1,
              toString(h.svc.health())},
             h.svc);

  // Phase 2: fault storm until the breaker trips, then quarantined service
  // on the software fallback.
  FaultCampaignConfig storm_cfg;
  storm_cfg.seed = 777;
  storm_cfg.fault_rate = 0.10;
  storm_cfg.stuck_cycles = 1500;
  FaultInjector storm{h.acc, storm_cfg, h.users};
  h.acc.setTickHook([&] { storm.tick(); });
  c0 = h.acc.cycle();
  resolved = 0;
  unsigned guard = 0;
  while (h.svc.health() != HealthState::Quarantined && guard++ < 3000)
    resolved += h.drive(1);
  auto [lo2, hi2] = minmax();
  printPhase({"storm", resolved, h.acc.cycle() - c0, lo2, hi2,
              toString(h.svc.health())},
             h.svc);

  // Phase 3: storm ends; fallback carries traffic through quarantine until
  // probation canaries re-admit the hardware.
  h.acc.setTickHook(nullptr);
  storm.releaseStuckReceivers();
  c0 = h.acc.cycle();
  resolved = 0;
  guard = 0;
  while (h.svc.health() != HealthState::Healthy && guard++ < 4000)
    resolved += h.drive(1);
  resolved += h.drive(200);  // recovered hardware back at full service
  auto [lo3, hi3] = minmax();
  printPhase({"recovery", resolved, h.acc.cycle() - c0, lo3, hi3,
              toString(h.svc.health())},
             h.svc);

  std::printf(
      "\nAdmission control keeps every tenant inside its queue budget, the\n"
      "breaker converts a wedged device into fallback service instead of\n"
      "timeouts, and probation canaries restore hardware throughput.\n\n");
}

void BM_ServicePumpHealthy(benchmark::State& state) {
  Harness h;
  for (auto _ : state) {
    h.offer();
    benchmark::DoNotOptimize(h.svc.pump());
    for (unsigned t = 0; t < kTenants; ++t)
      while (h.svc.fetch(t)) {
      }
  }
}
BENCHMARK(BM_ServicePumpHealthy)->Unit(benchmark::kMicrosecond);

void BM_ServicePumpQuarantined(benchmark::State& state) {
  Harness h;
  // Trip the breaker once, then measure fallback-path pumping.
  for (unsigned t = 0; t < kTenants; ++t) h.acc.setReceiverReady(h.users[t], false);
  unsigned guard = 0;
  while (h.svc.health() != HealthState::Quarantined && guard++ < 3000)
    h.drive(1);
  for (auto _ : state) {
    h.offer();
    benchmark::DoNotOptimize(h.svc.pump());
    for (unsigned t = 0; t < kTenants; ++t)
      while (h.svc.fetch(t)) {
      }
  }
}
BENCHMARK(BM_ServicePumpQuarantined)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  printOverloadStudy();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
